"""Figure 3 — query divergence (comparisons per level, gap analysis).

Paper setup: the Figure 2 tree, 100 random queries; per tree level, the
min/avg/max number of sequential key comparisons fluctuates widely around
an average close to 4 — evidence that co-scheduled queries diverge.
"""

from __future__ import annotations

from repro.analysis.gaps import query_divergence_gap
from repro.experiments.common import ExperimentResult, resolve_scale


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    div = query_divergence_gap(n_queries=100, rng=seed)
    result = ExperimentResult(
        experiment="fig03",
        title="Query divergence: comparisons per tree level (100 queries)",
        scale=sc.name,
        paper_reference={"avg_comparisons": "≈4 per level, wide min-max spread"},
    )
    for row in div.rows():
        result.add_row(**row)
    result.note(
        "shape criterion: per-level max-min spread ≥ 2 comparisons at every "
        "level and overall average in [2, 6] for fanout 8"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    spreads = [r["max"] - r["min"] for r in result.rows]
    avgs = [r["avg"] for r in result.rows]
    overall = sum(avgs) / len(avgs)
    return min(spreads) >= 2 and 2.0 <= overall <= 6.0


if __name__ == "__main__":  # pragma: no cover
    run().print()
