"""CLI: regenerate the paper's figures.

    harmonia-experiments                      # all figures, default scale
    harmonia-experiments --scale smoke
    harmonia-experiments --only fig11,fig13
    harmonia-experiments --out results.md
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Dict, List

EXPERIMENTS: Dict[str, str] = {
    "fig02": "repro.experiments.fig02_mem_transactions",
    "fig03": "repro.experiments.fig03_query_divergence",
    "fig08": "repro.experiments.fig08_psa_overhead",
    "fig10": "repro.experiments.fig10_node_usage",
    "fig11": "repro.experiments.fig11_throughput",
    "fig12": "repro.experiments.fig12_profile",
    "fig13": "repro.experiments.fig13_ablation",
    "fig14": "repro.experiments.fig14_update",
    "psa_bits": "repro.experiments.psa_bits",
    "ntg_model": "repro.experiments.ntg_model",
    # Extensions beyond the paper's figures (in-text claims / related-work
    # features made measurable — see DESIGN.md §5).
    "ext_range": "repro.experiments.ext_range",
    "ext_skew": "repro.experiments.ext_skew",
    "ext_devices": "repro.experiments.ext_devices",
    "ext_pipeline": "repro.experiments.ext_pipeline",
    "ext_baselines": "repro.experiments.ext_baselines",
    "ext_fanout": "repro.experiments.ext_fanout",
    "ext_mixed": "repro.experiments.ext_mixed",
    "ext_engine": "repro.experiments.ext_engine",
    "ext_overlap": "repro.experiments.ext_overlap",
    "ext_join": "repro.experiments.ext_join",
    "ext_tiled": "repro.experiments.ext_tiled",
}


def run_experiments(names: List[str], scale: str, seed: int) -> List[tuple]:
    """Run experiments by name; returns (name, result, shape_ok, seconds)."""
    out = []
    for name in names:
        module = importlib.import_module(EXPERIMENTS[name])
        t0 = time.perf_counter()
        result = module.run(scale=scale, seed=seed)
        elapsed = time.perf_counter() - t0
        ok = module.shape_ok(result)
        out.append((name, result, ok, elapsed))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the Harmonia paper's evaluation figures."
    )
    parser.add_argument(
        "--scale", default="default", choices=("smoke", "default", "paper"),
        help="experiment scale (paper = literal §5.1 sizes; slow)",
    )
    parser.add_argument(
        "--only", default=None,
        help=f"comma-separated subset of {','.join(EXPERIMENTS)}",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write a markdown report")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS)
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {unknown}")

    results = run_experiments(names, args.scale, args.seed)
    chunks = []
    all_ok = True
    for name, result, ok, elapsed in results:
        chunk = result.render()
        verdict = "SHAPE OK" if ok else "SHAPE MISMATCH"
        chunk += f"\n- verdict: **{verdict}** ({elapsed:.1f}s)\n"
        chunks.append(chunk)
        print(chunk)
        print()
        all_ok &= ok

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(f"# Harmonia figure reproduction (scale={args.scale})\n\n")
            fh.write("\n\n".join(chunks))
        print(f"report written to {args.out}")
    return 0 if all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
