"""Extension — host↔device collaboration modes (HB+Tree's pipelining, §6).

Streams query batches through the three transfer/compute overlap modes and
shows where each design saturates.  Expected physics: overlap always helps;
with Harmonia's fast kernel the full pipeline is *transfer-bound*, so the
double-buffer → pipeline step matters more than it does for slower kernels.
"""

from __future__ import annotations

from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_kernel_time
from repro.gpusim.pipeline import MODES, compare_modes
from repro.workloads.datasets import scaled_device, scaled_tree_sizes

N_BATCHES = 64


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)

    prep = tree.prepare_queries(queries, SearchConfig.full())
    metrics = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=device
    )
    kernel_s = estimate_kernel_time(metrics, tree.layout, device).total_s

    result = ExperimentResult(
        experiment="ext_pipeline",
        title="CPU-GPU collaboration modes for streamed query batches",
        scale=sc.name,
        paper_reference={
            "source": "HB+Tree's pipelining / double-buffering modes (§6)"
        },
    )
    points = compare_modes(N_BATCHES, queries.size, kernel_s, device)
    serial_tp = points["serial"].throughput(queries.size)
    for mode in MODES:
        p = points[mode]
        result.add_row(
            mode=mode,
            per_batch_kernel_us=round(p.kernel_s * 1e6, 1),
            per_batch_h2d_us=round(p.h2d_s * 1e6, 1),
            total_ms=round(p.total_s * 1e3, 3),
            mqs=round(p.throughput(queries.size) / 1e6, 1),
            vs_serial=round(p.throughput(queries.size) / serial_tp, 2),
            bottleneck=p.bottleneck,
        )
    result.note(
        "shape criteria: serial <= double_buffer <= pipeline throughput, "
        "and the full pipeline improves on serial by >= 1.3x"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["mode"]: r for r in result.rows}
    return (
        by["serial"]["mqs"] <= by["double_buffer"]["mqs"] + 1e-9
        and by["double_buffer"]["mqs"] <= by["pipeline"]["mqs"] + 1e-9
        and by["pipeline"]["vs_serial"] >= 1.3
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
