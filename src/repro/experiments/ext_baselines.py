"""Extension — the GPU thread-mapping design space.

The related work (§6) spans two classical thread mappings for GPU B+tree
search: *braided* (one query per thread — Fix et al. [14]) and
*fanout-wide groups* (one query per warp-sized group — Kaczmarski, Daga,
HB+Tree).  Harmonia's NTG sits between them with a model-chosen width.
This experiment lines all three up on the same tree and batch, with the
nvprof-style counters explaining each one's failure mode:

* braided maximizes queries in flight but its loads scatter (worst memory
  divergence) and its lanes run different comparison loops;
* fanout-wide groups coalesce within a node but burn lanes on useless
  comparisons (worst utilization);
* Harmonia's narrowed groups + PSA get both.
"""

from __future__ import annotations

from repro.baselines.braided import simulate_braided_search
from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_device, scaled_tree_sizes


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
    hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)

    result = ExperimentResult(
        experiment="ext_baselines",
        title="GPU thread mappings: braided vs fanout-wide vs Harmonia NTG",
        scale=sc.name,
        paper_reference={
            "braided": "Fix et al. [14]",
            "fanout_wide": "HB+Tree [39] / Kaczmarski [21,22]",
        },
    )

    rows = {}
    m = simulate_braided_search(hb._layout, queries, device=device)
    rows["braided (1 thread/query)"] = (m, modeled_throughput(m, hb._layout, device))
    m = hb.simulate_search(queries, device=device)
    rows["fanout-wide (HB+)"] = (m, modeled_throughput(m, hb._layout, device))
    prep = tree.prepare_queries(queries, SearchConfig.full())
    m = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=device
    )
    sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, device)
    rows[f"harmonia (NTG gs={prep.group_size})"] = (
        m, modeled_throughput(m, tree.layout, device, sort_s=sort_s)
    )

    base_tp = rows["fanout-wide (HB+)"][1]
    for name, (metrics, tp) in rows.items():
        result.add_row(
            mapping=name,
            modeled_gqs=round(tp / 1e9, 3),
            vs_fanout_wide=round(tp / base_tp, 2),
            mem_divergence=round(metrics.transactions_per_request, 2),
            utilization=round(metrics.utilization, 2),
            warp_coherence=round(metrics.warp_coherence, 2),
        )
    result.note(
        "shape criteria: braided has the worst memory divergence; "
        "fanout-wide the worst utilization; Harmonia beats both in modeled "
        "throughput"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["mapping"].split(" ")[0]: r for r in result.rows}
    braided, fanout = by["braided"], by["fanout-wide"]
    harmonia = by["harmonia"]
    return (
        braided["mem_divergence"] >= fanout["mem_divergence"]
        and fanout["utilization"] <= braided["utilization"] + 1e-9
        and harmonia["modeled_gqs"] > braided["modeled_gqs"]
        and harmonia["modeled_gqs"] > fanout["modeled_gqs"]
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
