"""Exception hierarchy for the Harmonia reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class InvalidKeyError(ReproError, ValueError):
    """A key is outside the representable range (e.g. equals the padding
    sentinel) or has the wrong dtype/shape."""


class InvariantViolation(ReproError, AssertionError):
    """A structural invariant of a tree or layout does not hold.

    Raised by the ``check_invariants`` validators; seeing this in the wild
    means a bug in an update path, never a user error.
    """


class EmptyTreeError(ReproError, ValueError):
    """An operation that requires a non-empty tree was applied to an empty
    one."""


class ConfigError(ReproError, ValueError):
    """A configuration object (SearchConfig / DeviceSpec / ...) is
    inconsistent."""


class CapacityError(ReproError, ValueError):
    """A node or region was asked to hold more entries than its fanout
    allows."""


__all__ = [
    "ReproError",
    "InvalidKeyError",
    "InvariantViolation",
    "EmptyTreeError",
    "ConfigError",
    "CapacityError",
]
