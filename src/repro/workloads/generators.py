"""Key-set and query-batch generators.

The paper's search evaluation (§5.1) draws 100-million-query batches from a
uniform distribution over trees of 2^23–2^26 64-bit keys.  We reproduce the
uniform workload exactly (at configurable scale) and add the distributions
other B+tree papers conventionally report (zipf for skew, normal for
clustered targets, sequential for scan-like streams) — all seeded and all
producing a configurable hit ratio by mixing stored keys with misses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import KEY_DTYPE
from repro.errors import ConfigError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import ensure_positive


def make_key_set(
    n: int,
    key_space_bits: int = 40,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` distinct sorted keys drawn uniformly from ``[0, 2^bits)``.

    ``key_space_bits`` defaults to 40 so that default-scale trees stay
    sparse in their space (the paper's trees are 2^23-2^26 keys in a 64-bit
    space; what matters for PSA is keys-per-space *density*, which Equation
    2 handles through the tree size anyway).
    """
    n = ensure_positive("n", n)
    if not 1 <= key_space_bits <= 62:
        raise ConfigError(f"key_space_bits must be in [1, 62], got {key_space_bits}")
    space = 1 << key_space_bits
    if n > space:
        raise ConfigError(f"cannot draw {n} distinct keys from 2^{key_space_bits}")
    gen = ensure_rng(rng)
    if n > space // 2:
        # Dense regime: permute the space.
        keys = gen.permutation(space)[:n]
    else:
        # Sparse: oversample then dedupe (two rounds suffice w.h.p.).
        keys = np.unique(gen.integers(0, space, size=int(n * 1.2), dtype=np.int64))
        while keys.size < n:
            extra = gen.integers(0, space, size=n, dtype=np.int64)
            keys = np.unique(np.concatenate([keys, extra]))
        keys = gen.permutation(keys)[:n]
    return np.sort(keys.astype(KEY_DTYPE))


def _mix_hits_and_misses(
    keys: np.ndarray,
    hit_targets: np.ndarray,
    hit_ratio: float,
    key_space: int,
    gen: np.random.Generator,
) -> np.ndarray:
    if not 0.0 <= hit_ratio <= 1.0:
        raise ConfigError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
    n = hit_targets.size
    if hit_ratio >= 1.0:
        return hit_targets
    miss_mask = gen.random(n) >= hit_ratio
    out = hit_targets.copy()
    misses = gen.integers(0, key_space, size=int(miss_mask.sum()), dtype=np.int64)
    out[miss_mask] = misses
    return out


def uniform_queries(
    keys: np.ndarray,
    n: int,
    hit_ratio: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """The paper's workload: targets uniform over the stored keys, with an
    optional fraction of uniform misses over the key space."""
    n = ensure_positive("n", n)
    gen = ensure_rng(rng)
    targets = keys[gen.integers(0, keys.size, size=n)]
    space = int(keys.max()) + 1
    return _mix_hits_and_misses(keys, targets, hit_ratio, space, gen)


def zipf_queries(
    keys: np.ndarray,
    n: int,
    alpha: float = 1.2,
    hit_ratio: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Skewed targets: key *ranks* follow a Zipf law (hot keys hit often).

    The rank permutation is seeded from the same stream, so hot keys are
    scattered over the key space (skew without spatial locality).
    """
    n = ensure_positive("n", n)
    if alpha <= 1.0:
        raise ConfigError(f"zipf alpha must be > 1, got {alpha}")
    gen = ensure_rng(rng)
    ranks = gen.zipf(alpha, size=n)
    ranks = np.minimum(ranks - 1, keys.size - 1)
    perm = gen.permutation(keys.size)
    targets = keys[perm[ranks]]
    space = int(keys.max()) + 1
    return _mix_hits_and_misses(keys, targets, hit_ratio, space, gen)


def normal_queries(
    keys: np.ndarray,
    n: int,
    center: Optional[float] = None,
    spread: float = 0.05,
    hit_ratio: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Targets clustered around a region of the key space (index positions
    drawn from a clipped normal)."""
    n = ensure_positive("n", n)
    if spread <= 0:
        raise ConfigError("spread must be positive")
    gen = ensure_rng(rng)
    c = 0.5 if center is None else center
    pos = gen.normal(c, spread, size=n)
    idx = np.clip((pos * keys.size).astype(np.int64), 0, keys.size - 1)
    targets = keys[idx]
    space = int(keys.max()) + 1
    return _mix_hits_and_misses(keys, targets, hit_ratio, space, gen)


def sequential_queries(
    keys: np.ndarray,
    n: int,
    start: int = 0,
    stride: int = 1,
) -> np.ndarray:
    """Scan-like stream: stored keys in index order (wraps around)."""
    n = ensure_positive("n", n)
    if stride == 0:
        raise ConfigError("stride must be non-zero")
    idx = (start + stride * np.arange(n, dtype=np.int64)) % keys.size
    return keys[idx]


def range_query_bounds(
    keys: np.ndarray,
    n: int,
    span_keys: int = 64,
    rng: RngLike = None,
) -> tuple:
    """``n`` (lo, hi) bounds each covering about ``span_keys`` stored keys."""
    n = ensure_positive("n", n)
    gen = ensure_rng(rng)
    lo_idx = gen.integers(0, max(keys.size - span_keys, 1), size=n)
    hi_idx = np.minimum(lo_idx + span_keys - 1, keys.size - 1)
    return keys[lo_idx], keys[hi_idx]


__all__ = [
    "make_key_set",
    "uniform_queries",
    "zipf_queries",
    "normal_queries",
    "sequential_queries",
    "range_query_bounds",
]
