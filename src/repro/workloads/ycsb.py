"""YCSB-style workload presets adapted to a batched index.

The paper evaluates pure-lookup and 5%-insert batches; real deployments
benchmark against the YCSB core workloads.  These presets translate each
YCSB letter to the phase-based world: per *round*, a query batch (point
and/or range lookups) plus an update batch, with the canonical mix and
request distribution:

| preset | YCSB | reads | updates/inserts | distribution |
|--------|------|-------|-----------------|--------------|
| A      | update heavy | 50% | 50% update | zipf |
| B      | read mostly  | 95% | 5% update  | zipf |
| C      | read only    | 100% | —         | zipf |
| D      | read latest  | 95% | 5% insert  | latest-skewed |
| E      | short ranges | 95% range scans | 5% insert | zipf |
| F      | read-modify-write | 50% | 50% RMW (read + update) | zipf |
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.update import Operation
from repro.errors import ConfigError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import ensure_positive
from repro.workloads.generators import range_query_bounds, uniform_queries, zipf_queries


@dataclass(frozen=True)
class YCSBRound:
    """One round of a YCSB-style run."""

    point_queries: np.ndarray  #: point-lookup targets (may be empty)
    range_bounds: Optional[Tuple[np.ndarray, np.ndarray]]  #: (los, his) or None
    updates: List[Operation]  #: the round's update batch
    #: RMW reads that must be issued before the updates (workload F).
    rmw_reads: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


@dataclass(frozen=True)
class YCSBPreset:
    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float
    range_fraction: float
    rmw: bool
    distribution: str  # "zipf" | "latest" | "uniform"


PRESETS: Dict[str, YCSBPreset] = {
    "A": YCSBPreset("A", 0.50, 0.50, 0.00, 0.0, False, "zipf"),
    "B": YCSBPreset("B", 0.95, 0.05, 0.00, 0.0, False, "zipf"),
    "C": YCSBPreset("C", 1.00, 0.00, 0.00, 0.0, False, "zipf"),
    "D": YCSBPreset("D", 0.95, 0.00, 0.05, 0.0, False, "latest"),
    "E": YCSBPreset("E", 0.00, 0.00, 0.05, 0.95, False, "zipf"),
    "F": YCSBPreset("F", 0.50, 0.50, 0.00, 0.0, True, "zipf"),
}


def _targets(
    keys: np.ndarray, n: int, distribution: str, gen: np.random.Generator
) -> np.ndarray:
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    if distribution == "zipf":
        return zipf_queries(keys, n, alpha=1.2, rng=gen)
    if distribution == "latest":
        # Favor the most recently inserted (largest) keys.
        ranks = np.minimum(gen.zipf(1.2, size=n) - 1, keys.size - 1)
        return keys[keys.size - 1 - ranks]
    if distribution == "uniform":
        return uniform_queries(keys, n, rng=gen)
    raise ConfigError(f"unknown distribution {distribution!r}")


def make_ycsb_round(
    preset: str,
    keys: np.ndarray,
    ops_per_round: int,
    key_space_bits: int = 40,
    range_span: int = 64,
    rng: RngLike = None,
) -> YCSBRound:
    """Generate one round of the named preset against stored ``keys``."""
    try:
        p = PRESETS[preset.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown YCSB preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None
    ops_per_round = ensure_positive("ops_per_round", ops_per_round)
    gen = ensure_rng(rng)

    n_reads = int(round(ops_per_round * p.read_fraction))
    n_updates = int(round(ops_per_round * p.update_fraction))
    n_inserts = int(round(ops_per_round * p.insert_fraction))
    n_ranges = ops_per_round - n_reads - n_updates - n_inserts

    point = _targets(keys, n_reads, p.distribution, gen)

    ranges = None
    if n_ranges > 0:
        ranges = range_query_bounds(keys, n_ranges, span_keys=range_span, rng=gen)

    updates: List[Operation] = []
    rmw_reads = np.empty(0, dtype=np.int64)
    if n_updates:
        victims = _targets(keys, n_updates, p.distribution, gen)
        updates.extend(
            Operation("update", int(k), int(gen.integers(1 << 30)))
            for k in victims
        )
        if p.rmw:
            rmw_reads = victims
    if n_inserts:
        space = 1 << key_space_bits
        fresh = gen.integers(0, space, size=n_inserts)
        updates.extend(Operation("insert", int(k), int(k)) for k in fresh)
    if updates:
        perm = gen.permutation(len(updates))
        updates = [updates[i] for i in perm]

    return YCSBRound(
        point_queries=point,
        range_bounds=ranges,
        updates=updates,
        rmw_reads=rmw_reads,
    )


def run_ycsb(
    preset: str,
    tree,
    rounds: int = 3,
    ops_per_round: int = 10_000,
    rng: RngLike = None,
    search_config=None,
) -> Dict[str, float]:
    """Drive a :class:`~repro.core.tree.HarmoniaTree` (or an
    :class:`~repro.core.epoch.EpochManager`) through ``rounds`` rounds and
    return aggregate throughput numbers (wall clock)."""
    import time

    gen = ensure_rng(rng)
    totals = {"reads": 0, "ranges": 0, "ops": 0,
              "read_s": 0.0, "range_s": 0.0, "update_s": 0.0}
    for _ in range(rounds):
        stored = tree.layout.all_keys() if hasattr(tree, "layout") else None
        if stored is None:  # EpochManager
            stored = tree._tree.layout.all_keys()
        batch = make_ycsb_round(preset, stored, ops_per_round, rng=gen)

        if batch.rmw_reads.size:
            t0 = time.perf_counter()
            tree.search_batch(batch.rmw_reads, search_config)
            totals["read_s"] += time.perf_counter() - t0
            totals["reads"] += batch.rmw_reads.size
        if batch.point_queries.size:
            t0 = time.perf_counter()
            tree.search_batch(batch.point_queries, search_config)
            totals["read_s"] += time.perf_counter() - t0
            totals["reads"] += batch.point_queries.size
        if batch.range_bounds is not None:
            los, his = batch.range_bounds
            t0 = time.perf_counter()
            for lo, hi in zip(los, his):
                tree.range_search(int(lo), int(hi))
            totals["range_s"] += time.perf_counter() - t0
            totals["ranges"] += los.size
        if batch.updates:
            t0 = time.perf_counter()
            if hasattr(tree, "apply_batch"):
                tree.apply_batch(batch.updates)
            else:  # EpochManager
                tree.submit_many(batch.updates)
                tree.flush()
            totals["update_s"] += time.perf_counter() - t0
            totals["ops"] += len(batch.updates)
    return totals


__all__ = ["PRESETS", "YCSBPreset", "YCSBRound", "make_ycsb_round", "run_ycsb"]
