"""Update-operation mixes for the batch-update evaluation (Figure 14).

The paper evaluates updates with "a data set mixed by 5% inserts and 95%
updates with a batch size of 4096K" (§5.1).  :data:`PAPER_UPDATE_MIX`
encodes that; :func:`make_update_batch` generates concrete operation lists
against a given key set, keeping inserts disjoint from stored keys so the
accounting is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.update import DELETE, INSERT, UPDATE, Operation
from repro.errors import ConfigError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class UpdateMix:
    """Operation-kind proportions of an update batch (must sum to 1)."""

    insert: float = 0.05
    update: float = 0.95
    delete: float = 0.0

    def __post_init__(self) -> None:
        for name in ("insert", "update", "delete"):
            frac = getattr(self, name)
            if not 0.0 <= frac <= 1.0:
                raise ConfigError(f"{name} fraction must be in [0, 1]")
        total = self.insert + self.update + self.delete
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"mix fractions must sum to 1, got {total}")


#: §5.1: 5% inserts, 95% updates.
PAPER_UPDATE_MIX = UpdateMix(insert=0.05, update=0.95, delete=0.0)

#: The paper's batch size (4096K operations).
PAPER_BATCH_SIZE = 4096 * 1024


def make_update_batch(
    keys: np.ndarray,
    n_ops: int,
    mix: UpdateMix = PAPER_UPDATE_MIX,
    key_space_bits: int = 40,
    rng: RngLike = None,
) -> List[Operation]:
    """Generate a shuffled operation batch against stored ``keys``.

    * updates/deletes target stored keys uniformly (deletes without
      replacement so each targets a live key);
    * inserts draw fresh keys disjoint from ``keys``.
    """
    n_ops = ensure_positive("n_ops", n_ops)
    gen = ensure_rng(rng)
    n_ins = int(round(n_ops * mix.insert))
    n_del = int(round(n_ops * mix.delete))
    n_upd = n_ops - n_ins - n_del
    if n_del > keys.size:
        raise ConfigError(f"cannot delete {n_del} of {keys.size} stored keys")

    ops: List[Operation] = []
    if n_ins:
        space = 1 << key_space_bits
        key_set = set(int(k) for k in keys)
        fresh: List[int] = []
        while len(fresh) < n_ins:
            cands = gen.integers(0, space, size=2 * (n_ins - len(fresh)))
            for c in cands:
                ci = int(c)
                if ci not in key_set:
                    key_set.add(ci)
                    fresh.append(ci)
                    if len(fresh) == n_ins:
                        break
        ops.extend(Operation(INSERT, k, k * 2 + 1) for k in fresh)
    if n_upd:
        targets = keys[gen.integers(0, keys.size, size=n_upd)]
        ops.extend(Operation(UPDATE, int(k), int(k) * 3 + 7) for k in targets)
    if n_del:
        victims = gen.choice(keys, size=n_del, replace=False)
        ops.extend(Operation(DELETE, int(k)) for k in victims)

    perm = gen.permutation(len(ops))
    return [ops[i] for i in perm]


__all__ = ["UpdateMix", "PAPER_UPDATE_MIX", "PAPER_BATCH_SIZE", "make_update_batch"]
