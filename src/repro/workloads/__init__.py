"""Workload generation: key sets, query batches, update mixes, scales."""

from repro.workloads.generators import (
    make_key_set,
    normal_queries,
    sequential_queries,
    uniform_queries,
    zipf_queries,
)
from repro.workloads.mixes import UpdateMix, make_update_batch, PAPER_UPDATE_MIX
from repro.workloads.datasets import (
    PAPER_TREE_SIZES,
    Scale,
    scaled_tree_sizes,
    scaled_query_count,
    scaled_batch_size,
)

__all__ = [
    "make_key_set",
    "uniform_queries",
    "zipf_queries",
    "normal_queries",
    "sequential_queries",
    "UpdateMix",
    "PAPER_UPDATE_MIX",
    "make_update_batch",
    "PAPER_TREE_SIZES",
    "Scale",
    "scaled_tree_sizes",
    "scaled_query_count",
    "scaled_batch_size",
]
