"""Experiment scales.

The paper's evaluation sizes (2^23–2^26 keys, 100M queries, 4096K-op
batches) are out of reach for a pure-Python execution in sensible time, so
every experiment is parameterized by a :class:`Scale`:

* ``paper``  — the literal §5.1 sizes (documented, runnable if you have the
  patience and RAM);
* ``default`` — sizes chosen so the full suite finishes in minutes while
  every *shape* criterion (see DESIGN.md §4) is still resolvable;
* ``smoke`` — seconds-level sizes for CI and tests.

The scaling preserves the ratios that matter: queries ≫ tree nodes at the
top levels (so caches see the same reuse pattern) and the tree-size sweep
stays a factor-8 span like the paper's 2^23→2^26.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError

#: §5.1: trees of 2^23 .. 2^26 keys.
PAPER_TREE_SIZES: List[int] = [2**23, 2**24, 2**25, 2**26]


@dataclass(frozen=True)
class Scale:
    """A named experiment scale."""

    name: str
    #: log2 of the smallest tree in the sweep (paper: 23).
    tree_log2_lo: int
    #: log2 of the largest tree in the sweep (paper: 26).
    tree_log2_hi: int
    #: queries per batch (paper: 100M).
    n_queries: int
    #: update-batch size (paper: 4096K).
    update_batch: int
    #: sample queries for gap-analysis experiments.
    n_sample: int = 1000


SCALES = {
    "paper": Scale("paper", 23, 26, 100_000_000, 4096 * 1024),
    "default": Scale("default", 17, 20, 1 << 16, 1 << 14),
    "smoke": Scale("smoke", 14, 16, 1 << 14, 1 << 10),
}

#: log2 of the smallest paper tree — the anchor for device miniaturization.
_PAPER_TREE_LOG2 = 23
_PAPER_QUERIES = 100_000_000


def miniaturized_device(n_keys: int, n_queries: int, base=None):
    """Miniaturize a device for a reduced workload.

    Running the paper's experiments at 1/64th the tree size against a
    full-size L2 would flip the memory behaviour (the whole tree becomes
    cache-resident and PSA has nothing to win); shrinking the L2 by the
    same factor preserves the working-set-to-cache ratio that the paper's
    memory effects depend on.  Launch overheads likewise scale with the
    batch size so fixed costs stay as negligible as they are at 100M
    queries.  At paper-scale inputs this is the identity.
    """
    from dataclasses import replace

    from repro.gpusim.device import TITAN_V

    if base is None:
        base = TITAN_V
    tree_factor = n_keys / float(1 << _PAPER_TREE_LOG2)
    query_factor = n_queries / _PAPER_QUERIES
    if tree_factor >= 1.0 and query_factor >= 1.0:
        return base
    return replace(
        base,
        name=f"{base.name} (mini x{tree_factor:g})",
        l2_bytes=max(int(base.l2_bytes * min(tree_factor, 1.0)), 4096),
        launch_overhead_us=base.launch_overhead_us * min(query_factor, 1.0),
    )


def scaled_device(scale: "Scale", base=None):
    """Miniaturize the device to match a :class:`Scale`'s workload (see
    :func:`miniaturized_device`)."""
    return miniaturized_device(
        1 << scale.tree_log2_lo, scale.n_queries, base
    )


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


def scaled_tree_sizes(scale: Scale) -> List[int]:
    """The tree-size sweep at this scale (log-spaced like 2^23..2^26)."""
    return [1 << e for e in range(scale.tree_log2_lo, scale.tree_log2_hi + 1)]


def scaled_query_count(scale: Scale) -> int:
    return scale.n_queries


def scaled_batch_size(scale: Scale) -> int:
    return scale.update_batch


__all__ = [
    "PAPER_TREE_SIZES",
    "Scale",
    "SCALES",
    "get_scale",
    "scaled_tree_sizes",
    "scaled_query_count",
    "scaled_batch_size",
    "scaled_device",
    "miniaturized_device",
]
