"""Global constants shared across the Harmonia reproduction.

The paper (§5.1, footnote 3) uses 64-bit keys.  We represent keys as signed
``int64`` and reserve the maximum representable value as a padding sentinel
for unused key slots, so vectorized ``searchsorted``-style comparisons never
have to mask out padding explicitly: every real key compares strictly below
the sentinel.
"""

from __future__ import annotations

import numpy as np

#: dtype of keys throughout the library (the paper uses 64-bit keys).
KEY_DTYPE = np.int64

#: dtype of values stored in leaves.
VALUE_DTYPE = np.int64

#: dtype of key-region / prefix-sum indices.
INDEX_DTYPE = np.int64

#: Sentinel used to pad unused key slots.  Must sort after every legal key.
KEY_MAX = np.iinfo(KEY_DTYPE).max

#: Sentinel returned by searches for keys that are absent.
NOT_FOUND = np.iinfo(VALUE_DTYPE).min

#: Default branching factor.  The paper evaluates fanouts 8..128 and uses 64
#: as the running example ("the size of a node is about 1KB for a 64-fanout
#: tree", §3.1).
DEFAULT_FANOUT = 64

#: Number of key bits assumed by PSA's Equation 2 (B in the paper).
KEY_BITS = 64

#: Smallest fanout for which the B+tree invariants are well defined.
MIN_FANOUT = 3

#: Usable constant-memory budget for the prefix-sum child region, in bytes.
#: Physical constant memory is 64 KB on every CUDA GPU (paper footnote 1),
#: but kernel parameters and driver-reserved slots live there too, so the
#: region the index may pin is smaller — the real Harmonia implementation
#: reserves headroom the same way (``harmonia_max_constant_mem``).  This is
#: the single source both :mod:`repro.core.stats` cache-fit helpers and the
#: :class:`repro.gpusim.device.DeviceSpec` presets draw from;
#: :meth:`repro.core.layout.HarmoniaLayout.caching_depth` converts it into
#: the number of upper tree levels served from constant memory.
CONST_MEMORY_BUDGET_BYTES = 48 * 1024

__all__ = [
    "KEY_DTYPE",
    "VALUE_DTYPE",
    "INDEX_DTYPE",
    "KEY_MAX",
    "NOT_FOUND",
    "DEFAULT_FANOUT",
    "KEY_BITS",
    "MIN_FANOUT",
    "CONST_MEMORY_BUDGET_BYTES",
]
