"""Comparator systems the paper evaluates against.

* :mod:`repro.baselines.hbtree` — the GPU part of HB+Tree [39]
  (Shahvarani & Jacobsen, SIGMOD '16), reimplemented from its description:
  regular node layout (keys + child pointers) in GPU global memory,
  fanout-wide thread groups, CPU-side batch updates with a full device-image
  sync.
* :mod:`repro.baselines.gpu_regular` — the unoptimized GPU regular B+tree
  used in the §2.2 gap analysis (Figures 2 and 3).
* :mod:`repro.baselines.cpu_btree` — a multi-threaded CPU B+tree searcher,
  the conventional non-GPU reference point.
"""

from repro.baselines.hbtree import HBTree, HBTreeDeviceImage
from repro.baselines.cpu_btree import CPUBTreeSearcher
from repro.baselines.gpu_regular import simulate_regular_gpu_search
from repro.baselines.braided import simulate_braided_search
from repro.baselines.css_tree import CSSTree

__all__ = [
    "HBTree",
    "HBTreeDeviceImage",
    "CPUBTreeSearcher",
    "simulate_regular_gpu_search",
    "simulate_braided_search",
    "CSSTree",
]
