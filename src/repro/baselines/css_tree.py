"""CSS-tree — Cache-Sensitive Search tree (Rao & Ross [34], related work).

The CPU ancestor of Harmonia's idea: a read-only search tree stored as one
contiguous array of cache-line-sized nodes with children located by
arithmetic, eliminating child pointers to make every touched byte useful.
The paper cites it (§6) as the lineage of cache-conscious layouts; having
it in the repository grounds the comparison between "cache-line-sized
nodes + arithmetic" (CSS, for CPU caches) and "fat nodes + prefix-sum
region" (Harmonia, for GPU warps).

Structure: a *directory* over the sorted key array.  Nodes hold ``m`` keys
(``m + 1`` children), with ``m`` chosen so a node fills one cache line.
Like the implicit B+tree the directory is complete — child of node ``i``
taking branch ``b`` is ``i * (m + 1) + b + 1`` — and updates rebuild.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.constants import KEY_DTYPE, KEY_MAX, NOT_FOUND, VALUE_DTYPE
from repro.errors import ConfigError
from repro.utils.validation import ensure_key_array, ensure_sorted_unique


class CSSTree:
    """Read-optimized contiguous search tree over sorted data.

    >>> t = CSSTree(np.arange(0, 100, 2))
    >>> int(t.search(4))
    4
    >>> t.search(5) is None
    True
    """

    def __init__(
        self,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        cache_line_bytes: int = 64,
    ) -> None:
        karr = ensure_sorted_unique(np.asarray(keys))
        if values is None:
            varr = karr.astype(VALUE_DTYPE, copy=True)
        else:
            varr = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
            if varr.shape != karr.shape:
                raise ConfigError("values must align with keys")
        if cache_line_bytes < 16 or cache_line_bytes % 8:
            raise ConfigError("cache_line_bytes must be a multiple of 8, >= 16")
        #: keys per directory node: one cache line of 8-byte keys.
        self.node_keys_n = cache_line_bytes // 8
        self.keys = karr
        self.values = varr
        self._build_directory()

    def _build_directory(self) -> None:
        m = self.node_keys_n
        fanout = m + 1
        n = self.keys.size
        if n == 0:
            self.height = 0
            self.n_internal = 0
            self.n_segments_cap = 1
            self.directory = np.empty((0, m), dtype=KEY_DTYPE)
            return
        # Leaf "nodes" are m-key segments of the sorted array itself; the
        # directory covers them like an implicit tree.
        n_segments = -(-n // m)
        height = 0
        capacity = 1
        while capacity < n_segments:
            capacity *= fanout
            height += 1
        self.height = height
        n_internal = (fanout**height - 1) // (fanout - 1) if height else 0
        self.n_internal = n_internal
        self.n_segments_cap = fanout**height

        directory = np.full((max(n_internal, 1), m), KEY_MAX, dtype=KEY_DTYPE)
        # Minimum key of each (padded) leaf segment.
        seg_min = np.full(self.n_segments_cap + 1, KEY_MAX, dtype=KEY_DTYPE)
        seg_starts = np.arange(n_segments) * m
        seg_min[:n_segments] = self.keys[seg_starts]
        level_count = self.n_segments_cap
        level_min = seg_min[:-1]
        level_start = n_internal
        while level_start > 0:
            parent_count = level_count // fanout
            parent_start = level_start - parent_count
            mins = level_min.reshape(parent_count, fanout)
            directory[parent_start:level_start] = mins[:, 1:]
            level_min = mins[:, 0]
            level_start = parent_start
            level_count = parent_count
        self.directory = directory if n_internal else directory[:0]

    # ---------------------------------------------------------------- query

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def directory_bytes(self) -> int:
        return int(self.directory.nbytes)

    def search(self, key: int) -> Optional[int]:
        out = self.search_batch(np.asarray([key], dtype=KEY_DTYPE))
        return None if out[0] == NOT_FOUND else int(out[0])

    def search_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorized lookups: directory descent by arithmetic, then a
        binary search within the target segment."""
        q = ensure_key_array(np.asarray(queries), "queries")
        nq = q.size
        out = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
        if nq == 0 or self.keys.size == 0:
            return out
        fanout = self.node_keys_n + 1
        node = np.zeros(nq, dtype=np.int64)
        for _ in range(self.height):
            rows = self.directory[node]
            slot = np.sum(rows <= q[:, None], axis=1)
            node = node * fanout + slot + 1
        segment = node - self.n_internal
        start = segment * self.node_keys_n
        end = np.minimum(start + self.node_keys_n, self.keys.size)
        # Per-query binary search inside its segment via global searchsorted
        # bounded to [start, end): positions are monotone in key, so a
        # global searchsorted + bounds check is equivalent.
        pos = np.searchsorted(self.keys, q, side="left")
        hit = (pos >= start) & (pos < end)
        hit &= np.where(hit, self.keys[np.minimum(pos, self.keys.size - 1)] == q, False)
        out[hit] = self.values[pos[hit]]
        return out

    def rebuild(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Updates rebuild (the CSS-tree trade-off the paper inherits via
        the implicit-tree discussion)."""
        self.__init__(keys, values, cache_line_bytes=self.node_keys_n * 8)


__all__ = ["CSSTree"]
