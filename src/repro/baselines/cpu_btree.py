"""Multi-threaded CPU B+tree search baseline.

The conventional reference point before reaching for a GPU: the pointer
B+tree searched by a pool of CPU threads, each thread owning a contiguous
chunk of the query batch (the standard shared-read, no-lock pattern for a
read-only phase).  Used by the update-throughput discussion (§3.2.2 claims
batch updates are "comparable ... with the multi-thread traditional
B+tree") and as a sanity anchor in the examples.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.btree.bulk import bulk_load
from repro.btree.regular import RegularBPlusTree
from repro.constants import DEFAULT_FANOUT, NOT_FOUND, VALUE_DTYPE
from repro.utils.validation import ensure_key_array, ensure_positive


class CPUBTreeSearcher:
    """Chunk-parallel batch search over a :class:`RegularBPlusTree`."""

    def __init__(self, tree: RegularBPlusTree, n_threads: int = 4) -> None:
        self.tree = tree
        self.n_threads = ensure_positive("n_threads", n_threads)

    @classmethod
    def from_sorted(
        cls,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
        n_threads: int = 4,
    ) -> "CPUBTreeSearcher":
        return cls(bulk_load(keys, values, fanout=fanout, fill=fill), n_threads)

    def _search_chunk(self, chunk: np.ndarray) -> np.ndarray:
        out = np.full(chunk.size, NOT_FOUND, dtype=VALUE_DTYPE)
        search = self.tree.search
        for i, key in enumerate(chunk):
            v = search(int(key))
            if v is not None:
                out[i] = v
        return out

    def search_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Point lookups; :data:`~repro.constants.NOT_FOUND` for misses."""
        q = ensure_key_array(np.asarray(queries), "queries")
        if q.size == 0:
            return np.empty(0, dtype=VALUE_DTYPE)
        if self.n_threads == 1 or q.size < 2 * self.n_threads:
            return self._search_chunk(q)
        chunks = np.array_split(q, self.n_threads)
        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            parts = list(pool.map(self._search_chunk, chunks))
        return np.concatenate(parts)


__all__ = ["CPUBTreeSearcher"]
