"""HB+Tree [39] — the state-of-the-art comparator (GPU part + batch update).

HB+Tree keeps a *regular* B+tree image on the GPU: every node stores its
keys **and** an array of child references; traversal dereferences a child
pointer per level (one extra global load), nodes are pointer-fat, and the
search kernel serves each query with a fanout-wide thread group comparing
every key of the node.  Updates run on the CPU over the master (pointer)
tree and the device image is re-synchronized afterwards.

Two execution surfaces:

* :meth:`HBTree.search_batch` — a real, vectorized CPU execution of the
  GPU kernel's algorithm over the device image (used for correctness tests
  and wall-clock measurements);
* :meth:`HBTree.simulate_search` — the same traversal on the SIMT device
  model, producing the nvprof-style counters Figures 11-13 compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.btree.bulk import bulk_load
from repro.btree.iterators import bfs_index_map, bfs_nodes
from repro.btree.node import InternalNode, LeafNode
from repro.btree.regular import RegularBPlusTree
from repro.constants import (
    DEFAULT_FANOUT,
    INDEX_DTYPE,
    KEY_DTYPE,
    KEY_MAX,
    NOT_FOUND,
    VALUE_DTYPE,
)
from repro.core.layout import HarmoniaLayout
from repro.core.update import Operation, TwoGrainedLocks
from repro.errors import EmptyTreeError
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import simulate_hbtree_search
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array, ensure_scalar_key


@dataclass
class HBTreeDeviceImage:
    """The GPU-resident arrays of HB+Tree's regular layout.

    ``node_keys[node, slot]`` and ``child_ptr[node, c]`` in BFS order
    (HB+Tree, like Fix et al. [14], reorganizes the tree into a continuous
    buffer before upload); ``child_ptr`` holds BFS indices, ``-1`` when
    absent.  ``leaf_values`` aligns with the trailing leaf block.
    """

    fanout: int
    height: int
    node_keys: np.ndarray  # (n_nodes, fanout-1)
    child_ptr: np.ndarray  # (n_nodes, fanout)
    leaf_values: np.ndarray  # (n_leaves, fanout-1)
    leaf_start: int
    n_keys: int

    @classmethod
    def from_regular(cls, tree: RegularBPlusTree) -> "HBTreeDeviceImage":
        if len(tree) == 0:
            raise EmptyTreeError("cannot build a device image of an empty tree")
        fanout = tree.fanout
        slots = fanout - 1
        index_of = bfs_index_map(tree)
        nodes = list(bfs_nodes(tree))
        n_nodes = len(nodes)
        node_keys = np.full((n_nodes, slots), KEY_MAX, dtype=KEY_DTYPE)
        child_ptr = np.full((n_nodes, fanout), -1, dtype=INDEX_DTYPE)
        leaf_start = next(i for i, n in enumerate(nodes) if n.is_leaf)
        leaf_values = np.full(
            (n_nodes - leaf_start, slots), NOT_FOUND, dtype=VALUE_DTYPE
        )
        for i, node in enumerate(nodes):
            nk = len(node.keys)
            node_keys[i, :nk] = node.keys
            if node.is_leaf:
                assert isinstance(node, LeafNode)
                leaf_values[i - leaf_start, :nk] = node.values
            else:
                assert isinstance(node, InternalNode)
                for c, child in enumerate(node.children):
                    child_ptr[i, c] = index_of[id(child)]
        return cls(
            fanout=fanout,
            height=tree.height,
            node_keys=node_keys,
            child_ptr=child_ptr,
            leaf_values=leaf_values,
            leaf_start=leaf_start,
            n_keys=len(tree),
        )

    def search_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorized execution of the pointer-chasing kernel algorithm."""
        q = ensure_key_array(np.asarray(queries), "queries")
        nq = q.size
        node = np.zeros(nq, dtype=np.int64)
        for _ in range(self.height - 1):
            rows = self.node_keys[node]
            slot = np.sum(rows <= q[:, None], axis=1)
            node = self.child_ptr[node, slot]  # the indirect load
        rows = self.node_keys[node]
        pos = np.sum(rows < q[:, None], axis=1)
        pos_c = np.minimum(pos, rows.shape[1] - 1)
        hit = rows[np.arange(nq), pos_c] == q
        out = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
        li = node - self.leaf_start
        out[hit] = self.leaf_values[li[hit], pos_c[hit]]
        return out


class HBTree:
    """The full HB+Tree system: CPU master tree + GPU device image."""

    def __init__(self, tree: RegularBPlusTree) -> None:
        if len(tree) == 0:
            raise EmptyTreeError("HBTree requires a non-empty tree")
        self.master = tree
        self.image = HBTreeDeviceImage.from_regular(tree)
        #: Shared traversal-shape snapshot for the SIMT simulator (the tree
        #: shape is identical; only the address stream differs).
        self._layout = HarmoniaLayout.from_regular(tree)

    # ------------------------------------------------------------- building

    @classmethod
    def from_sorted(
        cls,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
    ) -> "HBTree":
        return cls(bulk_load(keys, values, fanout=fanout, fill=fill))

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self.image.n_keys

    @property
    def fanout(self) -> int:
        return self.image.fanout

    @property
    def height(self) -> int:
        return self.image.height

    def search(self, key: int) -> Optional[int]:
        key = ensure_scalar_key(key)
        out = self.image.search_batch(np.asarray([key], dtype=np.int64))
        return None if out[0] == NOT_FOUND else int(out[0])

    def search_batch(self, queries: Sequence[int]) -> np.ndarray:
        """HB+ issues queries in arrival order (no PSA equivalent)."""
        return self.image.search_batch(queries)

    def simulate_search(
        self, queries: Sequence[int], device: DeviceSpec = TITAN_V
    ) -> KernelMetrics:
        """Run the kernel on the SIMT device model (arrival order,
        fanout-wide groups, pointer fetches)."""
        q = ensure_key_array(np.asarray(queries), "queries")
        return simulate_hbtree_search(self._layout, q, device=device)

    # -------------------------------------------------------------- updates

    def apply_batch(self, ops: Sequence[Operation], n_threads: int = 4) -> dict:
        """HB+Tree's batch update: mutate the CPU master tree under the same
        two-grained protocol, then rebuild ("sync") the device image.

        Returns an accounting dict with per-phase seconds.
        """
        import threading
        import time
        from concurrent.futures import ThreadPoolExecutor

        locks = TwoGrainedLocks()
        counts = {"inserted": 0, "updated": 0, "deleted": 0, "failed": 0}
        counts_guard = threading.Lock()

        def one(op: Operation) -> None:
            # The master tree's node splits/merges move keys between nodes,
            # so HB+ conservatively serializes structural inserts/deletes
            # through the coarse path and uses fine locks for value updates.
            if op.kind == "update":
                leaf = self.master.find_leaf(op.key)
                done = {}

                def body() -> None:
                    done["ok"] = self.master.update(op.key, op.value)

                locks.fine_op(id(leaf), body)
                key = "updated" if done.get("ok") else "failed"
            else:
                done = {}

                def body() -> None:
                    if op.kind == "insert":
                        done["ok"] = self.master.insert(op.key, op.value)
                        done["key"] = "inserted"
                    else:
                        done["ok"] = self.master.delete(op.key)
                        done["key"] = "deleted"

                locks.coarse_op(body)
                key = done["key"] if done.get("ok") else "failed"
            with counts_guard:
                counts[key] += 1

        t0 = time.perf_counter()
        if n_threads <= 1:
            for op in ops:
                one(op)
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                list(pool.map(one, ops, chunksize=64))
        t1 = time.perf_counter()
        if len(self.master):
            self.image = HBTreeDeviceImage.from_regular(self.master)
            self._layout = HarmoniaLayout.from_regular(self.master)
        t2 = time.perf_counter()
        counts["apply_s"] = t1 - t0
        counts["sync_s"] = t2 - t1
        counts["total_s"] = t2 - t0
        return counts


__all__ = ["HBTree", "HBTreeDeviceImage"]
