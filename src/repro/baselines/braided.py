"""Braided-parallelism GPU B+tree search (Fix, Wilkes & Skadron [14]).

The other classical thread mapping: **one query per thread** — each of a
warp's 32 lanes traverses the tree independently ("braided method
parallelism"), with the tree reorganized into a continuous pointer-bearing
buffer before upload.  Per-thread traversal makes every step data
dependent: lanes diverge on their comparison loops and their loads scatter
across 32 unrelated nodes, which is exactly the §2.2 mismatch Harmonia
fixes.  Including it alongside the fanout-wide mapping lets the
ext_baselines experiment span the design space the related work covers.

In the SIMT model this is the ``regular_pointer`` structure with
``group_size=1`` and per-thread sequential comparison (early exit —
a lone thread compares keys one at a time and stops at the target child).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import SimConfig, simulate_search
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array


def simulate_braided_search(
    layout: HarmoniaLayout,
    queries: Sequence[int],
    device: DeviceSpec = TITAN_V,
) -> KernelMetrics:
    """Execute the braided (thread-per-query) kernel on the device model."""
    q = ensure_key_array(np.asarray(queries), "queries")
    cfg = SimConfig(
        structure="regular_pointer",
        group_size=1,
        early_exit=True,  # a single thread scans sequentially and stops
        cached_children=False,
        device=device,
    )
    return simulate_search(layout, q, cfg)


__all__ = ["simulate_braided_search"]
