"""The unoptimized GPU regular B+tree of the §2.2 gap analysis.

This is what Figures 2 and 3 measure: a pointer-layout B+tree uploaded to
the GPU as-is and searched with fanout-wide thread groups, *without* any of
Harmonia's machinery.  Structurally identical to HB+Tree's GPU part — the
distinction in the paper is framing (gap analysis vs comparator), so this
module is a thin, documented entry point over the shared simulator with the
gap-analysis defaults baked in (e.g. Figure 2's height-4, fanout-8 tree
puts 4 queries in each 32-thread warp).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.core.ntg import fanout_group_size
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import SimConfig, simulate_search
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array


def simulate_regular_gpu_search(
    layout: HarmoniaLayout,
    queries: Sequence[int],
    device: DeviceSpec = TITAN_V,
    group_size: int = None,
) -> KernelMetrics:
    """Simulate the naive GPU regular-B+tree search kernel.

    Thread groups default to the fanout-based width, so a fanout-8 tree
    yields ``warp_size / 8 = 4`` queries per warp — the Figure 2 setup.
    """
    q = ensure_key_array(np.asarray(queries), "queries")
    gs = group_size or fanout_group_size(layout.fanout, device.warp_size)
    cfg = SimConfig(
        structure="regular_pointer",
        group_size=gs,
        early_exit=False,
        cached_children=False,
        device=device,
    )
    return simulate_search(layout, q, cfg)


def worst_case_transactions_per_warp(layout: HarmoniaLayout, queries_per_warp: int) -> float:
    """Figure 2's "worst" bar: coalesced at the root (every query reads the
    same single node), fully divergent everywhere below (each query's node
    is distinct), assuming one line per fanout-8 node.

    ``(1 + (height-1) · queries_per_warp) / height`` — e.g. 3.25 for the
    paper's height-4 tree with 4 queries per warp.
    """
    h = layout.height
    return (1 + (h - 1) * queries_per_warp) / h


def best_case_transactions_per_warp(layout: HarmoniaLayout) -> float:
    """Figure 2's "best" bar: every level fully coalesced — one transaction
    per warp per level."""
    return 1.0


__all__ = [
    "simulate_regular_gpu_search",
    "worst_case_transactions_per_warp",
    "best_case_transactions_per_warp",
]
