"""Classic B+tree substrates.

``regular`` is the pointer-based B+tree the paper takes as its starting point
(§2.2 "regular B+tree"): nodes hold keys *and* child references, updates work
in place via split/merge.  ``implicit`` is the breadth-first array variant the
paper contrasts with (complete tree, children found by index arithmetic).
``bulk`` builds either from sorted data at a chosen fill factor, which is how
evaluation trees of 2^23..2^26 keys are constructed.
"""

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.regular import RegularBPlusTree
from repro.btree.implicit import ImplicitBPlusTree
from repro.btree.bulk import bulk_load

__all__ = [
    "Node",
    "LeafNode",
    "InternalNode",
    "RegularBPlusTree",
    "ImplicitBPlusTree",
    "bulk_load",
]
