"""Pointer-based regular B+tree (the paper's §2.2 baseline structure).

This is a complete, self-balancing B+tree: point search, range search,
insert (with node splits), delete (with borrow/merge rebalancing), and
in-place value updates.  It serves three roles in the reproduction:

* the CPU reference implementation every other structure is tested against;
* the source structure Harmonia's layout is *flattened from*
  (:meth:`repro.core.layout.HarmoniaLayout.from_regular`);
* the structure the batch-update machinery (§3.2.2) mutates before the
  post-batch movement rebuilds the Harmonia regions.

Node capacity follows the paper: at most ``fanout`` children and
``fanout - 1`` keys per node.  Minimum occupancy is the textbook
``ceil(fanout / 2)`` children for internal nodes and
``ceil((fanout - 1) / 2)`` keys for leaves (root exempt).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode, Node
from repro.constants import DEFAULT_FANOUT
from repro.errors import EmptyTreeError, InvariantViolation
from repro.utils.validation import ensure_fanout, ensure_scalar_key


class RegularBPlusTree:
    """A mutable, pointer-based B+tree mapping int64 keys to int64 values.

    >>> t = RegularBPlusTree(fanout=4)
    >>> t.insert(10, 100)
    >>> t.insert(20, 200)
    >>> t.search(10)
    100
    >>> t.search(15) is None
    True
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        self.fanout = ensure_fanout(fanout)
        self.max_keys = self.fanout - 1
        self.min_leaf_keys = (self.fanout - 1 + 1) // 2  # ceil((fanout-1)/2)
        self.min_children = (self.fanout + 1) // 2  # ceil(fanout/2)
        self.root: Node = LeafNode()
        self._size = 0
        self._height = 1  # levels, counting the leaf level

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        # An empty tree is still a valid object; mirror dict semantics.
        return self._size > 0

    @property
    def height(self) -> int:
        """Number of levels, leaves included (a lone leaf root has height 1)."""
        return self._height

    # ---------------------------------------------------------------- lookup

    def _descend(self, key: int) -> Tuple[LeafNode, List[InternalNode]]:
        """Leaf responsible for ``key`` plus the internal path to it."""
        path: List[InternalNode] = []
        node = self.root
        while not node.is_leaf:
            assert isinstance(node, InternalNode)
            path.append(node)
            node = node.children[node.child_index_for(key)]
        assert isinstance(node, LeafNode)
        return node, path

    def find_leaf(self, key: int) -> LeafNode:
        """The leaf whose key range contains ``key`` (public: the batch
        updater needs leaf identity for fine-grained locking)."""
        return self._descend(ensure_scalar_key(key))[0]

    def search(self, key: int) -> Optional[int]:
        """Value stored under ``key``, or ``None`` when absent."""
        key = ensure_scalar_key(key)
        return self._descend(key)[0].find(key)

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def range_search(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All ``(key, value)`` pairs with ``lo <= key <= hi`` in key order.

        Implements the paper's range query: locate the first leaf via a point
        search, then scan rightwards through the leaf links (§3.2.1).
        """
        lo = ensure_scalar_key(lo)
        hi = ensure_scalar_key(hi)
        if lo > hi:
            return []
        leaf: Optional[LeafNode] = self._descend(lo)[0]
        out: List[Tuple[int, int]] = []
        while leaf is not None:
            start = bisect_left(leaf.keys, lo)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > hi:
                    return out
                out.append((leaf.keys[i], leaf.values[i]))
            leaf = leaf.next_leaf
        return out

    def items(self) -> Iterator[Tuple[int, int]]:
        """All pairs in key order via the leaf chain."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    def _leftmost_leaf(self) -> LeafNode:
        node = self.root
        while not node.is_leaf:
            assert isinstance(node, InternalNode)
            node = node.children[0]
        assert isinstance(node, LeafNode)
        return node

    def min_key(self) -> int:
        if not self._size:
            raise EmptyTreeError("min_key() on empty tree")
        return self._leftmost_leaf().keys[0]

    def max_key(self) -> int:
        if not self._size:
            raise EmptyTreeError("max_key() on empty tree")
        node = self.root
        while not node.is_leaf:
            assert isinstance(node, InternalNode)
            node = node.children[-1]
        return node.keys[-1]

    # ---------------------------------------------------------------- update

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value under an existing ``key``; False if absent.

        This is the paper's "update" operation (§3.2.2): like a query, plus a
        value store — never changes the tree shape.
        """
        key = ensure_scalar_key(key)
        return self._descend(key)[0].set_value(key, value)

    # ---------------------------------------------------------------- insert

    def insert(self, key: int, value: int) -> bool:
        """Insert a new pair.  Returns True if inserted, False if the key was
        already present (in which case the stored value is left untouched —
        use :meth:`update` or :meth:`upsert` to overwrite)."""
        key = ensure_scalar_key(key)
        split = self._insert_rec(self.root, key, value)
        if split is None:
            return self._last_insert_was_new
        sep, right = split
        new_root = InternalNode()
        new_root.keys = [sep]
        new_root.children = [self.root, right]
        self.root = new_root
        self._height += 1
        return True

    def upsert(self, key: int, value: int) -> bool:
        """Insert or overwrite; True when a new key was created."""
        if self.update(key, value):
            return False
        return self.insert(key, value)

    _last_insert_was_new = True

    def _insert_rec(
        self, node: Node, key: int, value: int
    ) -> Optional[Tuple[int, Node]]:
        """Insert below ``node``; return ``(separator, new_right_sibling)``
        when ``node`` split, else ``None``."""
        if node.is_leaf:
            assert isinstance(node, LeafNode)
            i = bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                self._last_insert_was_new = False
                return None
            self._last_insert_was_new = True
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._size += 1
            if len(node.keys) <= self.max_keys:
                return None
            return self._split_leaf(node)

        assert isinstance(node, InternalNode)
        ci = node.child_index_for(key)
        split = self._insert_rec(node.children[ci], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(ci, sep)
        node.children.insert(ci + 1, right)
        if len(node.children) <= self.fanout:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: LeafNode) -> Tuple[int, LeafNode]:
        """Split an overfull leaf; separator is the right half's first key
        (right-inclusive separator convention)."""
        mid = len(leaf.keys) // 2
        right = LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: InternalNode) -> Tuple[int, InternalNode]:
        """Split an overfull internal node; the middle key moves up."""
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = InternalNode()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        del node.keys[mid:]
        del node.children[mid + 1 :]
        return sep, right

    # ---------------------------------------------------------------- delete

    def delete(self, key: int) -> bool:
        """Remove ``key``; False when absent.  Rebalances via borrow/merge."""
        key = ensure_scalar_key(key)
        removed = self._delete_rec(self.root, key)
        if not removed:
            return False
        # Collapse a root that lost its last separator.
        if not self.root.is_leaf:
            assert isinstance(self.root, InternalNode)
            if len(self.root.children) == 1:
                self.root = self.root.children[0]
                self._height -= 1
        return True

    def _delete_rec(self, node: Node, key: int) -> bool:
        if node.is_leaf:
            assert isinstance(node, LeafNode)
            if node.remove_entry(key):
                self._size -= 1
                return True
            return False

        assert isinstance(node, InternalNode)
        ci = node.child_index_for(key)
        child = node.children[ci]
        if not self._delete_rec(child, key):
            return False
        if self._underflows(child):
            self._rebalance(node, ci)
        return True

    def _underflows(self, node: Node) -> bool:
        if node is self.root:
            return False
        if node.is_leaf:
            return len(node.keys) < self.min_leaf_keys
        assert isinstance(node, InternalNode)
        return len(node.children) < self.min_children

    def _rebalance(self, parent: InternalNode, ci: int) -> None:
        """Restore minimum occupancy of ``parent.children[ci]`` by borrowing
        from a sibling when possible, else merging with one."""
        child = parent.children[ci]
        left = parent.children[ci - 1] if ci > 0 else None
        right = parent.children[ci + 1] if ci + 1 < len(parent.children) else None

        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, ci, left, child)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, ci, child, right)
        elif left is not None:
            self._merge(parent, ci - 1, left, child)
        else:
            assert right is not None
            self._merge(parent, ci, child, right)

    def _can_lend(self, node: Node) -> bool:
        if node.is_leaf:
            return len(node.keys) > self.min_leaf_keys
        assert isinstance(node, InternalNode)
        return len(node.children) > self.min_children

    def _borrow_from_left(
        self, parent: InternalNode, ci: int, left: Node, child: Node
    ) -> None:
        if child.is_leaf:
            assert isinstance(left, LeafNode) and isinstance(child, LeafNode)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[ci - 1] = child.keys[0]
        else:
            assert isinstance(left, InternalNode) and isinstance(child, InternalNode)
            # Rotate through the parent separator.
            child.keys.insert(0, parent.keys[ci - 1])
            parent.keys[ci - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: InternalNode, ci: int, child: Node, right: Node
    ) -> None:
        if child.is_leaf:
            assert isinstance(right, LeafNode) and isinstance(child, LeafNode)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[ci] = right.keys[0]
        else:
            assert isinstance(right, InternalNode) and isinstance(child, InternalNode)
            child.keys.append(parent.keys[ci])
            parent.keys[ci] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: InternalNode, sep_i: int, left: Node, right: Node) -> None:
        """Merge ``right`` into ``left``; ``sep_i`` is the separator between
        them in ``parent``."""
        if left.is_leaf:
            assert isinstance(left, LeafNode) and isinstance(right, LeafNode)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            assert isinstance(left, InternalNode) and isinstance(right, InternalNode)
            left.keys.append(parent.keys[sep_i])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[sep_i]
        del parent.children[sep_i + 1]

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        """Verify every structural invariant; raises
        :class:`~repro.errors.InvariantViolation` on the first failure.

        Checked: per-node key order and capacity, minimum occupancy,
        separator/key-range consistency, uniform leaf depth, child-count
        arithmetic, leaf-chain ordering and completeness, and size accounting.
        """
        leaves: List[LeafNode] = []
        count = self._check_node(self.root, lo=None, hi=None, depth=1, leaves=leaves)
        if count != self._size:
            raise InvariantViolation(f"size {self._size} != counted {count}")
        # Leaf chain must visit exactly the leaves, left to right.
        chain: List[LeafNode] = []
        leaf: Optional[LeafNode] = self._leftmost_leaf()
        while leaf is not None:
            chain.append(leaf)
            leaf = leaf.next_leaf
        if [id(x) for x in chain] != [id(x) for x in leaves]:
            raise InvariantViolation("leaf chain does not match tree order")
        flat = [k for lf in leaves for k in lf.keys]
        if flat != sorted(set(flat)):
            raise InvariantViolation("leaf keys are not globally sorted/unique")

    def _check_node(
        self,
        node: Node,
        lo: Optional[int],
        hi: Optional[int],
        depth: int,
        leaves: List[LeafNode],
    ) -> int:
        keys = node.keys
        if keys != sorted(keys):
            raise InvariantViolation("node keys unsorted")
        if len(set(keys)) != len(keys):
            raise InvariantViolation("duplicate keys inside a node")
        if len(keys) > self.max_keys:
            raise InvariantViolation(f"node holds {len(keys)} > {self.max_keys} keys")
        # Range check: keys in (lo, hi] ... with our convention keys satisfy
        # lo <= k < hi for internal ranges; leaf keys satisfy lo <= k < hi.
        for k in keys:
            if lo is not None and k < lo:
                raise InvariantViolation(f"key {k} below lower bound {lo}")
            if hi is not None and k >= hi:
                raise InvariantViolation(f"key {k} not below upper bound {hi}")

        if node.is_leaf:
            assert isinstance(node, LeafNode)
            if depth != self._height:
                raise InvariantViolation(
                    f"leaf at depth {depth}, expected {self._height}"
                )
            if node is not self.root and len(keys) < self.min_leaf_keys:
                raise InvariantViolation(
                    f"leaf underfull: {len(keys)} < {self.min_leaf_keys}"
                )
            if len(node.values) != len(keys):
                raise InvariantViolation("leaf keys/values length mismatch")
            leaves.append(node)
            return len(keys)

        assert isinstance(node, InternalNode)
        if len(node.children) != len(keys) + 1:
            raise InvariantViolation("internal children != keys + 1")
        if node is self.root:
            if len(node.children) < 2:
                raise InvariantViolation("internal root has < 2 children")
        elif len(node.children) < self.min_children:
            raise InvariantViolation(
                f"internal underfull: {len(node.children)} < {self.min_children}"
            )
        total = 0
        bounds = [lo] + list(keys) + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(child, bounds[i], bounds[i + 1], depth + 1, leaves)
        return total

    # -------------------------------------------------------------- plumbing

    def level_nodes(self) -> List[List[Node]]:
        """Nodes grouped per level, root first (BFS order within a level)."""
        levels: List[List[Node]] = []
        frontier: List[Node] = [self.root]
        while frontier:
            levels.append(frontier)
            nxt: List[Node] = []
            for n in frontier:
                if not n.is_leaf:
                    assert isinstance(n, InternalNode)
                    nxt.extend(n.children)
            frontier = nxt
        return levels

    def node_count(self) -> int:
        return sum(len(level) for level in self.level_nodes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegularBPlusTree(fanout={self.fanout}, size={self._size}, "
            f"height={self._height})"
        )


__all__ = ["RegularBPlusTree"]
