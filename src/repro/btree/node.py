"""Node objects for the pointer-based ("regular") B+tree.

The paper's regular B+tree (§2.2, Figure 4a): an internal node stores up to
``fanout - 1`` keys and up to ``fanout`` child references; a leaf stores up to
``fanout - 1`` keys with their values plus a sibling link for range scans.

Keys inside a node are kept sorted.  The separator convention is
*left-exclusive / right-inclusive*: in an internal node with keys
``k_0 < k_1 < ...``, child ``i`` covers targets ``t`` with
``k_{i-1} <= t < k_i`` — i.e. the child index for target ``t`` is
``bisect_right(keys, t)`` using ``<=`` against separators, matching the
``searchsorted(..., side="right")`` used by the vectorized Harmonia kernels
so both structures always agree on traversal paths.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro.errors import CapacityError


class Node:
    """Common base for leaf and internal nodes."""

    __slots__ = ("keys", "fine_lock")

    def __init__(self) -> None:
        self.keys: List[int] = []
        #: Per-node fine-grained lock for Algorithm 1 (update protocol).
        self.fine_lock = threading.Lock()

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    def n_keys(self) -> int:
        return len(self.keys)


class LeafNode(Node):
    """Leaf: sorted keys, aligned values, and a right-sibling link."""

    __slots__ = ("values", "next_leaf", "status_split", "aux")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[int] = []
        self.next_leaf: Optional["LeafNode"] = None
        #: Batch-update bookkeeping (paper §3.2.2): when an insert splits this
        #: leaf mid-batch, the split is staged on an auxiliary node and the
        #: leaf is marked ``status_split`` until the post-batch movement.
        self.status_split: bool = False
        self.aux: Optional[object] = None  # core.update.AuxiliaryNode

    @property
    def is_leaf(self) -> bool:
        return True

    def find(self, key: int) -> Optional[int]:
        """Value stored under ``key`` or ``None``."""
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return self.values[i]
        return None

    def insert_entry(self, key: int, value: int, max_keys: int) -> None:
        """Insert ``key`` (assumed absent) keeping order; reject overflow."""
        if len(self.keys) >= max_keys:
            raise CapacityError(f"leaf already holds {max_keys} keys")
        i = bisect_left(self.keys, key)
        self.keys.insert(i, key)
        self.values.insert(i, value)

    def set_value(self, key: int, value: int) -> bool:
        """Overwrite the value under ``key``; False when absent."""
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            self.values[i] = value
            return True
        return False

    def remove_entry(self, key: int) -> bool:
        """Delete ``key``; False when absent."""
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            del self.keys[i]
            del self.values[i]
            return True
        return False


class InternalNode(Node):
    """Internal node: ``len(children) == len(keys) + 1`` always holds."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[Node] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def child_index_for(self, key: int) -> int:
        """Index of the child whose range contains ``key``.

        Separators equal to the target send the query right (see module
        docstring), hence ``bisect_right``.
        """
        return bisect_right(self.keys, key)

    def child_slot_of(self, child: Node) -> int:
        """Position of ``child`` among this node's children (identity match)."""
        for i, c in enumerate(self.children):
            if c is child:
                return i
        raise ValueError("node is not a child of this internal node")


__all__ = ["Node", "LeafNode", "InternalNode", "bisect_left", "bisect_right", "insort"]
