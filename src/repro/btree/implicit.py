"""Implicit (complete, array-backed) B+tree — the paper's §2.2 alternative.

An implicit B+tree stores only keys, in one breadth-first array; children are
located by index arithmetic (``child = node * fanout + slot + 1``), so the
tree must be *complete*: every internal node has exactly ``fanout`` children.
Missing key slots are padded with the :data:`~repro.constants.KEY_MAX`
sentinel, which compares above every legal key and therefore never perturbs a
``searchsorted``.

The paper rejects this organization for updatable workloads because any
insert or delete "has to restructure the entire tree" (§2.2) — which is
exactly what :meth:`ImplicitBPlusTree.insert` / ``delete`` do here, making
the cost trade-off measurable rather than hypothetical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_FANOUT,
    KEY_DTYPE,
    KEY_MAX,
    NOT_FOUND,
    VALUE_DTYPE,
)
from repro.errors import ConfigError, InvariantViolation
from repro.utils.validation import ensure_fanout, ensure_key_array, ensure_sorted_unique


class ImplicitBPlusTree:
    """Complete BFS-array B+tree over strictly increasing keys.

    Layout: ``node_keys[node, slot]`` with ``fanout - 1`` slots per node.
    The leaf level holds the data keys (padded); ``values`` aligns with the
    leaf level.  Internal separator ``k`` routes a target ``t >= k`` right,
    matching the regular tree's convention.
    """

    def __init__(
        self,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        self.fanout = ensure_fanout(fanout)
        karr = ensure_sorted_unique(np.asarray(keys))
        if values is None:
            varr = karr.astype(VALUE_DTYPE, copy=True)
        else:
            varr = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
            if varr.shape != karr.shape:
                raise ConfigError("values must align with keys")
        self._build(karr, varr)

    # ----------------------------------------------------------------- build

    def _build(self, karr: np.ndarray, varr: np.ndarray) -> None:
        """(Re)construct the whole array structure — the paper's full-tree
        restructure."""
        f = self.fanout
        slots = f - 1
        n = int(karr.size)
        self._keys_flat = karr
        self._values_flat = varr
        # Height: smallest h with capacity slots * f**(h-1) >= max(n, 1).
        height = 1
        leaf_capacity = slots
        while leaf_capacity < n:
            leaf_capacity *= f
            height += 1
        self.height = height
        self.n_leaves = f ** (height - 1)
        self.n_internal = (f ** (height - 1) - 1) // (f - 1)
        self.n_nodes = self.n_internal + self.n_leaves

        node_keys = np.full((self.n_nodes, slots), KEY_MAX, dtype=KEY_DTYPE)
        leaf_values = np.full((self.n_leaves, slots), NOT_FOUND, dtype=VALUE_DTYPE)

        # Distribute data keys into leaves left-packed.
        full_leaves, rem = divmod(n, slots)
        leaf_keys = node_keys[self.n_internal :]
        if full_leaves:
            leaf_keys[:full_leaves] = karr[: full_leaves * slots].reshape(-1, slots)
            leaf_values[:full_leaves] = varr[: full_leaves * slots].reshape(-1, slots)
        if rem:
            leaf_keys[full_leaves, :rem] = karr[full_leaves * slots :]
            leaf_values[full_leaves, :rem] = varr[full_leaves * slots :]

        # Internal levels, bottom-up: separator slot j of a node is the
        # minimum key of its child j+1's subtree (KEY_MAX when that subtree
        # is empty, keeping searchsorted monotone).
        subtree_min = np.concatenate([leaf_keys[:, 0], [KEY_MAX]])  # +guard
        level_start = self.n_internal
        level_count = self.n_leaves
        while level_start > 0:
            parent_count = level_count // f
            parent_start = level_start - parent_count
            mins = subtree_min[:-1].reshape(parent_count, f)
            node_keys[parent_start:level_start] = mins[:, 1:]
            subtree_min = np.concatenate([mins[:, 0], [KEY_MAX]])
            level_start = parent_start
            level_count = parent_count
        self.node_keys = node_keys
        self.leaf_values = leaf_values
        self._size = n

    # ---------------------------------------------------------------- lookup

    def __len__(self) -> int:
        return self._size

    def child_index(self, node: int, slot: int) -> int:
        """Index arithmetic replacing child pointers (§2.2)."""
        return node * self.fanout + slot + 1

    def search(self, key: int) -> Optional[int]:
        """Point lookup; ``None`` when absent."""
        key = int(key)
        node = 0
        for _ in range(self.height - 1):
            slot = int(np.searchsorted(self.node_keys[node], key, side="right"))
            node = self.child_index(node, slot)
        li = node - self.n_internal
        row = self.node_keys[node]
        pos = int(np.searchsorted(row, key, side="left"))
        if pos < row.size and row[pos] == key:
            return int(self.leaf_values[li, pos])
        return None

    def search_batch(self, queries: Sequence[int]) -> np.ndarray:
        """Vectorized point lookups; absent keys yield
        :data:`~repro.constants.NOT_FOUND`."""
        q = ensure_key_array(np.asarray(queries), "queries")
        node = np.zeros(q.size, dtype=np.int64)
        for _ in range(self.height - 1):
            rows = self.node_keys[node]
            slot = _rowwise_searchsorted_right(rows, q)
            node = node * self.fanout + slot + 1
        rows = self.node_keys[node]
        pos = _rowwise_searchsorted_left(rows, q)
        pos_clip = np.minimum(pos, rows.shape[1] - 1)
        hit = rows[np.arange(q.size), pos_clip] == q
        out = np.full(q.size, NOT_FOUND, dtype=VALUE_DTYPE)
        li = node - self.n_internal
        out[hit] = self.leaf_values[li[hit], pos_clip[hit]]
        return out

    # ---------------------------------------------------------------- update

    def update(self, key: int, value: int) -> bool:
        """Overwrite an existing key's value (no restructure needed)."""
        key = int(key)
        node = 0
        for _ in range(self.height - 1):
            slot = int(np.searchsorted(self.node_keys[node], key, side="right"))
            node = self.child_index(node, slot)
        li = node - self.n_internal
        row = self.node_keys[node]
        pos = int(np.searchsorted(row, key, side="left"))
        if pos < row.size and row[pos] == key:
            self.leaf_values[li, pos] = value
            return True
        return False

    def insert(self, key: int, value: int) -> bool:
        """Insert by full restructure (the cost the paper calls out)."""
        key = int(key)
        pos = int(np.searchsorted(self._keys_flat, key))
        if pos < self._keys_flat.size and self._keys_flat[pos] == key:
            return False
        karr = np.insert(self._keys_flat, pos, key)
        varr = np.insert(self._values_flat, pos, value)
        self._build(karr, varr)
        return True

    def delete(self, key: int) -> bool:
        """Delete by full restructure."""
        key = int(key)
        pos = int(np.searchsorted(self._keys_flat, key))
        if pos >= self._keys_flat.size or self._keys_flat[pos] != key:
            return False
        karr = np.delete(self._keys_flat, pos)
        varr = np.delete(self._values_flat, pos)
        self._build(karr, varr)
        return True

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        """Structural checks: completeness arithmetic, padded monotonicity,
        and that the leaf level concatenates back to the source keys."""
        f, slots = self.fanout, self.fanout - 1
        if self.n_internal != (self.n_leaves - 1) // (f - 1):
            raise InvariantViolation("internal/leaf count arithmetic broken")
        if self.node_keys.shape != (self.n_nodes, slots):
            raise InvariantViolation("node_keys shape mismatch")
        rows_sorted = np.all(self.node_keys[:, 1:] >= self.node_keys[:, :-1])
        if not bool(rows_sorted):
            raise InvariantViolation("a node row is unsorted")
        leaf_keys = self.node_keys[self.n_internal :].ravel()
        data = leaf_keys[leaf_keys != KEY_MAX]
        if data.size != self._size or not np.array_equal(data, self._keys_flat):
            raise InvariantViolation("leaf level does not reproduce source keys")


def _rowwise_searchsorted_right(rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-row ``searchsorted(..., side='right')``: count of ``row <= t``.

    Padding sentinels are ``KEY_MAX`` and every target is below them, so the
    comparison-count formulation is exact and fully vectorized.
    """
    return np.sum(rows <= targets[:, None], axis=1).astype(np.int64)


def _rowwise_searchsorted_left(rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-row ``searchsorted(..., side='left')``: count of ``row < t``."""
    return np.sum(rows < targets[:, None], axis=1).astype(np.int64)


__all__ = [
    "ImplicitBPlusTree",
    "_rowwise_searchsorted_right",
    "_rowwise_searchsorted_left",
]
