"""Traversal utilities over the pointer-based B+tree.

Harmonia's flattening (:mod:`repro.core.layout`) and several analysis
experiments need the exact breadth-first order the paper stores the key
region in (§3.1), so BFS enumeration lives here as a shared utility.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Tuple

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.regular import RegularBPlusTree


def bfs_nodes(tree: RegularBPlusTree) -> Iterator[Node]:
    """All nodes in breadth-first order, root first."""
    queue: "deque[Node]" = deque([tree.root])
    while queue:
        node = queue.popleft()
        yield node
        if not node.is_leaf:
            assert isinstance(node, InternalNode)
            queue.extend(node.children)


def bfs_index_map(tree: RegularBPlusTree) -> "dict[int, int]":
    """Map ``id(node) -> BFS index`` (the node's key-region slot)."""
    return {id(node): i for i, node in enumerate(bfs_nodes(tree))}


def leaves_in_order(tree: RegularBPlusTree) -> List[LeafNode]:
    """Leaves left-to-right, via the structure (not the chain — the chain is
    itself validated against this in ``check_invariants``)."""
    return [n for n in bfs_nodes(tree) if n.is_leaf]  # BFS visits leaves last, in order


def level_of_nodes(tree: RegularBPlusTree) -> List[Tuple[int, Node]]:
    """Pairs of ``(level, node)`` in BFS order; the root is level 0."""
    out: List[Tuple[int, Node]] = []
    frontier: List[Node] = [tree.root]
    level = 0
    while frontier:
        nxt: List[Node] = []
        for node in frontier:
            out.append((level, node))
            if not node.is_leaf:
                assert isinstance(node, InternalNode)
                nxt.extend(node.children)
        frontier = nxt
        level += 1
    return out


def traversal_path(tree: RegularBPlusTree, key: int) -> List[Node]:
    """The root-to-leaf node path a point query for ``key`` follows."""
    path: List[Node] = []
    node: Node = tree.root
    while True:
        path.append(node)
        if node.is_leaf:
            return path
        assert isinstance(node, InternalNode)
        node = node.children[node.child_index_for(key)]


__all__ = [
    "bfs_nodes",
    "bfs_index_map",
    "leaves_in_order",
    "level_of_nodes",
    "traversal_path",
]
