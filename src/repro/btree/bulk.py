"""Bulk loading: build a balanced B+tree from sorted data in one pass.

The evaluation trees (2^23 .. 2^26 keys, §5.1) are far too large to build by
repeated insertion in reasonable time; like every serious B+tree codebase we
bottom-up bulk-load them: pack the sorted pairs into leaves at a chosen fill
factor, then build each internal level over the previous one.

``fill`` controls node occupancy.  ``fill=1.0`` packs nodes full;
``fill=0.5`` leaves them half full, which matches the paper's observation
that "it is a high probability that a B+tree node is half full" (§4.2) and
is what a tree built by random insertion converges to — Figure 10's shape
depends on it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.regular import RegularBPlusTree
from repro.constants import DEFAULT_FANOUT, VALUE_DTYPE
from repro.errors import ConfigError
from repro.utils.validation import ensure_fanout, ensure_sorted_unique


def _chunk_sizes(n: int, target: int, minimum: int, maximum: int) -> List[int]:
    """Split ``n`` items into chunks of ≈``target`` items, each within
    ``[minimum, maximum]`` — except a single chunk is allowed to be smaller
    when ``n < minimum`` (root-only trees).

    The classic trick: cut greedy ``target``-sized chunks, then, if the tail
    chunk would underflow, rebalance it with its left neighbour so both end
    up ≥ ``minimum``.
    """
    if n <= 0:
        return []
    if n < 2 * minimum:
        # Cannot make two legal chunks.  A single chunk never exceeds
        # ``maximum`` here because B+tree occupancy bounds guarantee
        # ``2 * minimum - 1 <= maximum``; it may be *under* ``minimum``,
        # which is legal only for the root (callers rely on that).
        return [n]
    sizes: List[int] = []
    remaining = n
    while remaining:
        if remaining > target and remaining - target >= minimum:
            take = target
        elif remaining <= maximum:
            take = remaining
        else:
            # A full target chunk would strand an underfull tail; leave
            # exactly ``minimum`` for the final chunk instead.
            take = remaining - minimum
        sizes.append(take)
        remaining -= take
    return sizes


def bulk_load(
    keys: Sequence[int],
    values: Optional[Sequence[int]] = None,
    fanout: int = DEFAULT_FANOUT,
    fill: float = 1.0,
) -> RegularBPlusTree:
    """Build a :class:`RegularBPlusTree` from strictly increasing ``keys``.

    ``values`` defaults to the keys themselves.  ``fill`` in ``(0, 1]`` sets
    the target node occupancy (fraction of ``fanout - 1`` keys per leaf and
    ``fanout`` children per internal node), clamped to the legal minimum.
    """
    fanout = ensure_fanout(fanout)
    karr = ensure_sorted_unique(np.asarray(keys))
    if values is None:
        varr = karr.astype(VALUE_DTYPE, copy=True)
    else:
        varr = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if varr.shape != karr.shape:
            raise ConfigError(
                f"values shape {varr.shape} != keys shape {karr.shape}"
            )
    if not 0.0 < fill <= 1.0:
        raise ConfigError(f"fill must be in (0, 1], got {fill}")

    tree = RegularBPlusTree(fanout)
    n = karr.size
    if n == 0:
        return tree

    max_leaf = fanout - 1
    leaf_target = max(tree.min_leaf_keys, min(max_leaf, round(fill * max_leaf)))
    leaf_sizes = _chunk_sizes(n, leaf_target, tree.min_leaf_keys, max_leaf)

    leaves: List[LeafNode] = []
    pos = 0
    prev: Optional[LeafNode] = None
    for size in leaf_sizes:
        leaf = LeafNode()
        leaf.keys = karr[pos : pos + size].tolist()
        leaf.values = varr[pos : pos + size].tolist()
        if prev is not None:
            prev.next_leaf = leaf
        prev = leaf
        leaves.append(leaf)
        pos += size

    tree._size = n
    level: List[Node] = list(leaves)
    # Minimum key of each subtree, used as the separator to its left.
    level_mins: List[int] = [lf.keys[0] for lf in leaves]
    height = 1

    internal_target = max(tree.min_children, min(fanout, round(fill * fanout)))
    while len(level) > 1:
        sizes = _chunk_sizes(len(level), internal_target, tree.min_children, fanout)
        if len(sizes) == 1 and sizes[0] < 2:
            raise ConfigError("internal level collapsed to a single child")
        parents: List[Node] = []
        parent_mins: List[int] = []
        pos = 0
        for size in sizes:
            node = InternalNode()
            node.children = level[pos : pos + size]
            node.keys = level_mins[pos + 1 : pos + size]
            parents.append(node)
            parent_mins.append(level_mins[pos])
            pos += size
        level = parents
        level_mins = parent_mins
        height += 1

    tree.root = level[0]
    tree._height = height
    return tree


__all__ = ["bulk_load"]
