"""Tiny wall-clock timing utility used by the experiment harness.

``pytest-benchmark`` handles the statistically careful timing in
``benchmarks/``; :class:`Timer` is for the experiment scripts that print
paper-style rows, where one ``perf_counter`` pair per phase is enough.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulates named phase durations.

    >>> t = Timer()
    >>> with t.phase("sort"):
    ...     pass
    >>> "sort" in t.seconds
    True
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        """Sum of all recorded phases."""
        return float(sum(self.seconds.values()))

    def get(self, name: str, default: float = 0.0) -> float:
        return self.seconds.get(name, default)

    def reset(self) -> None:
        self.seconds.clear()


def throughput(n_ops: int, seconds: float) -> float:
    """Operations per second, guarding against zero-duration phases."""
    if seconds <= 0.0:
        return float("inf") if n_ops else 0.0
    return n_ops / seconds


__all__ = ["Timer", "throughput"]
