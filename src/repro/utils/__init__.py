"""Shared low-level helpers (validation, RNG, prefix sums, timing)."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    ensure_fanout,
    ensure_key_array,
    ensure_positive,
    ensure_power_of_two,
    ensure_scalar_key,
)
from repro.utils.prefix import exclusive_prefix_sum, children_counts_from_prefix
from repro.utils.timer import Timer

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "ensure_fanout",
    "ensure_key_array",
    "ensure_positive",
    "ensure_power_of_two",
    "ensure_scalar_key",
    "exclusive_prefix_sum",
    "children_counts_from_prefix",
    "Timer",
]
