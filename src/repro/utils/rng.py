"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts an ``rng`` argument that is
normalized through :func:`ensure_rng`, so experiments are reproducible from a
single integer seed and independent streams can be split off deterministically
with :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an ``int`` or
    :class:`numpy.random.SeedSequence` seeds a new PCG64 generator; a
    ``Generator`` is passed through unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as an RNG")


def spawn_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Split ``n`` statistically independent generators off ``rng``.

    Deterministic when ``rng`` is a seed or a seeded generator: the children
    are derived via ``SeedSequence.spawn`` semantics using integers drawn from
    the parent stream.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike, salt: int = 0) -> int:
    """Derive a stable integer seed from ``rng`` (used to seed subprocesses
    or hashed workload generators)."""
    parent = ensure_rng(rng)
    return int(parent.integers(0, 2**63 - 1)) ^ (salt * 0x9E3779B97F4A7C15 % (2**63))


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_seed"]
