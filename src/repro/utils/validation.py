"""Argument-validation helpers.

These raise the library's exception types with actionable messages; hot paths
call them once per *batch*, never per element, so the cost is negligible
(guide: vectorize, validate at the boundary).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.constants import KEY_DTYPE, KEY_MAX, MIN_FANOUT
from repro.errors import ConfigError, InvalidKeyError


def ensure_positive(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue <= 0:
        raise ConfigError(f"{name} must be positive, got {ivalue}")
    return ivalue


def ensure_power_of_two(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive power of two."""
    ivalue = ensure_positive(name, value)
    if ivalue & (ivalue - 1):
        raise ConfigError(f"{name} must be a power of two, got {ivalue}")
    return ivalue


def ensure_fanout(fanout: Any) -> int:
    """Validate a B+tree branching factor."""
    f = ensure_positive("fanout", fanout)
    if f < MIN_FANOUT:
        raise ConfigError(f"fanout must be >= {MIN_FANOUT}, got {f}")
    return f


def ensure_scalar_key(key: Any) -> int:
    """Validate a single key: integral, representable, not the sentinel."""
    try:
        ikey = int(key)
    except (TypeError, ValueError) as exc:
        raise InvalidKeyError(f"key must be an integer, got {key!r}") from exc
    info = np.iinfo(KEY_DTYPE)
    if not (info.min <= ikey <= info.max):
        raise InvalidKeyError(f"key {ikey} outside int64 range")
    if ikey == KEY_MAX:
        raise InvalidKeyError(
            f"key {ikey} is reserved as the padding sentinel and cannot be stored"
        )
    return ikey


def ensure_key_array(keys: Any, name: str = "keys") -> np.ndarray:
    """Coerce ``keys`` to a contiguous 1-D int64 array and reject sentinels.

    Returns a *view* when the input already has the right dtype/layout so hot
    callers pay nothing (guide: use views, not copies).
    """
    arr = np.ascontiguousarray(keys, dtype=KEY_DTYPE)
    if arr.ndim != 1:
        raise InvalidKeyError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and arr.max(initial=np.iinfo(KEY_DTYPE).min) == KEY_MAX:
        raise InvalidKeyError(
            f"{name} contains the reserved sentinel value {KEY_MAX}"
        )
    return arr


def ensure_sorted_unique(keys: np.ndarray, name: str = "keys") -> np.ndarray:
    """Validate that ``keys`` is strictly increasing (sorted, duplicate-free)."""
    arr = ensure_key_array(keys, name)
    if arr.size > 1 and not bool(np.all(arr[1:] > arr[:-1])):
        raise InvalidKeyError(f"{name} must be strictly increasing")
    return arr


__all__ = [
    "ensure_positive",
    "ensure_power_of_two",
    "ensure_fanout",
    "ensure_scalar_key",
    "ensure_key_array",
    "ensure_sorted_unique",
]
