"""Prefix-sum helpers for the Harmonia child region.

The child region (paper §3.1) is an array ``PS`` of length ``n_nodes + 1``
where ``PS[i]`` is the key-region index of node ``i``'s first child and
``PS[i+1] - PS[i]`` is node ``i``'s child count (0 for leaves).  ``PS[0]`` is
always 1 for a non-empty tree (the root occupies index 0, its first child —
if any — index 1).
"""

from __future__ import annotations

import numpy as np

from repro.constants import INDEX_DTYPE
from repro.errors import InvariantViolation


def exclusive_prefix_sum(counts: np.ndarray, base: int = 0) -> np.ndarray:
    """Return the length ``len(counts)+1`` exclusive prefix sum of ``counts``
    shifted by ``base``.

    ``out[i] = base + sum(counts[:i])``, so ``out[i+1]-out[i] == counts[i]``.
    """
    counts = np.asarray(counts, dtype=INDEX_DTYPE)
    out = np.empty(counts.size + 1, dtype=INDEX_DTYPE)
    out[0] = base
    np.cumsum(counts, out=out[1:])
    if base:
        out[1:] += base
    return out


def children_counts_from_prefix(prefix: np.ndarray) -> np.ndarray:
    """Invert :func:`exclusive_prefix_sum`: per-node child counts."""
    prefix = np.asarray(prefix, dtype=INDEX_DTYPE)
    if prefix.ndim != 1 or prefix.size < 1:
        raise InvariantViolation("prefix-sum array must be 1-D and non-empty")
    counts = np.diff(prefix)
    if counts.size and counts.min() < 0:
        raise InvariantViolation("prefix-sum array must be non-decreasing")
    return counts


def validate_prefix_array(prefix: np.ndarray, n_nodes: int) -> None:
    """Check the structural properties the child region must satisfy:

    * length is ``n_nodes + 1``;
    * non-decreasing;
    * every referenced child index lies inside the key region;
    * internal prefix starts at 1 (root is node 0).
    """
    prefix = np.asarray(prefix)
    if prefix.shape != (n_nodes + 1,):
        raise InvariantViolation(
            f"prefix-sum array has shape {prefix.shape}, expected ({n_nodes + 1},)"
        )
    counts = children_counts_from_prefix(prefix)
    if n_nodes and prefix[0] != 1:
        raise InvariantViolation(f"prefix[0] must be 1, got {prefix[0]}")
    if n_nodes and prefix[-1] != n_nodes:
        raise InvariantViolation(
            f"prefix[-1] must equal n_nodes={n_nodes}, got {prefix[-1]}"
        )
    # A node's children must start after the node itself (BFS order).
    idx = np.arange(n_nodes, dtype=INDEX_DTYPE)
    has_children = counts > 0
    if bool(np.any(prefix[:-1][has_children] <= idx[has_children])):
        raise InvariantViolation("a node's first child must follow it in BFS order")


__all__ = [
    "exclusive_prefix_sum",
    "children_counts_from_prefix",
    "validate_prefix_array",
]
