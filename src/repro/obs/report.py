"""Human-readable rendering of snapshots: ``repro obs report`` / ``diff``.

Plain fixed-width text (no terminal deps).  The report leads with the
paper-facing derived quantities — transactions per warp (Fig 2),
unique nodes per level (Figs 5-7 / 12), the §4.1.3 overlap figures —
then lists every counter / gauge / histogram with its catalogued unit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import bucket_quantile
from repro.obs.schema import SCHEMA_VERSION, lookup


def _unit(name: str) -> str:
    spec = lookup(name)
    return spec.unit if spec is not None else "?"


def _hist_quantile(hist: Dict[str, Any], q: float) -> Optional[float]:
    """``q``-quantile of a snapshot histogram dict (None when empty or
    malformed — rendering must not fail on a foreign snapshot)."""
    edges = hist.get("edges")
    counts = hist.get("counts")
    if not edges or not counts or len(counts) != len(edges) + 1:
        return None
    return bucket_quantile(edges, counts, q,
                           lo=hist.get("min"), hi=hist.get("max"))


def _percentile_cells(hist: Dict[str, Any]) -> str:
    cells = []
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        v = _hist_quantile(hist, q)
        cells.append(f"{label}={_fmt(v) if v is not None else '-'}")
    return " ".join(cells)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    return str(value)


def _level_series(counters: Dict[str, Any], prefix: str) -> List[Tuple[int, int]]:
    """Collect a per-level counter family ``{prefix}l<N>`` sorted by level."""
    series = []
    for name, value in counters.items():
        if name.startswith(prefix):
            tail = name[len(prefix):]
            if tail.startswith("l") and tail[1:].isdigit():
                series.append((int(tail[1:]), value))
    return sorted(series)


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(width * value / peak)) if value > 0 else ""


def render_report(snapshot: Dict[str, Any]) -> str:
    """Render one snapshot as a text report."""
    lines: List[str] = []
    version = snapshot.get("schema_version")
    lines.append(f"== obs report (schema v{version}) ==")
    if version != SCHEMA_VERSION:
        lines.append(f"!! snapshot schema v{version} != supported "
                     f"v{SCHEMA_VERSION}; rendering best-effort")
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    spans = snapshot.get("spans", {})

    derived: List[str] = []
    degrees = _level_series(gauges, "ntg.level_degree.")
    if degrees:
        vec = "[" + ", ".join(str(int(v)) for _, v in degrees) + "]"
        derived.append(f"  NTG degrees (root->leaf, §4.2): {vec}")
        prof = gauges.get("ntg.profile_s")
        if prof is not None:
            derived.append(f"  NTG profiling time:             {_fmt(prof)} s")
    tpw = gauges.get("gpusim.transactions_per_warp")
    if tpw is not None:
        derived.append(f"  transactions/warp (Fig 2):      {_fmt(tpw)}")
    tpr = gauges.get("gpusim.transactions_per_request")
    if tpr is not None:
        derived.append(f"  transactions/request:           {_fmt(tpr)}  "
                       "(1.0 = fully coalesced)")
    coh = gauges.get("gpusim.warp_coherence")
    if coh is not None:
        derived.append(f"  warp coherence:                 {_fmt(coh)}")
    util = gauges.get("gpusim.utilization")
    if util is not None:
        derived.append(f"  lane utilization (Fig 9):       {_fmt(util)}")
    hidden = gauges.get("stream.sort_hidden_ratio")
    if hidden is not None:
        status = "hidden" if hidden <= 1.0 else "NOT hidden"
        derived.append(f"  sort/traverse ratio (§4.1.3):   {_fmt(hidden)}  "
                       f"[sort {status}]")
    overlap = gauges.get("stream.overlap_s")
    wall = gauges.get("stream.wall_s")
    if overlap is not None and wall:
        derived.append(f"  measured overlap:               {_fmt(overlap)} s "
                       f"of {_fmt(wall)} s wall "
                       f"({overlap / wall:.1%})")
    qps = gauges.get("stream.throughput_qps")
    if qps is not None:
        derived.append(f"  stream throughput:              {_fmt(qps)} q/s")
    ups = gauges.get("update.throughput_ops")
    if ups is not None:
        derived.append(f"  batch-update throughput (§3.2.2): {_fmt(ups)} ops/s")
    moved = counters.get("update.moved_leaves")
    rebuilt = counters.get("update.rebuilt_leaves")
    if moved is not None and rebuilt is not None and (moved + rebuilt):
        derived.append(f"  movement reuse:                 "
                       f"{moved / (moved + rebuilt):.1%} of leaf rows moved "
                       f"verbatim ({moved:,} kept / {rebuilt:,} rebuilt)")
    flushes = counters.get("epoch.flushes")
    if flushes:
        drains = counters.get("epoch.drains", 0)
        derived.append(f"  epoch flush amortization:       {_fmt(flushes)} "
                       f"flushes folded by {_fmt(drains)} drains "
                       f"({flushes / max(drains, 1):.1f} flushes/rebuild)")
    req = histograms.get("shard.request_s")
    if req and req.get("count"):
        derived.append(
            f"  request latency (router):       n={_fmt(req['count'])}  "
            f"{_percentile_cells(req)} s"
        )
    njoins = counters.get("join.joins")
    if njoins:
        probes = counters.get("join.probes", 0)
        sel = gauges.get("join.selectivity")
        sel_txt = f"{sel:.1%}" if sel is not None else "n/a"
        derived.append(f"  dual-tree joins:                {_fmt(njoins)} "
                       f"joins over {_fmt(probes)} probes "
                       f"(last selectivity {sel_txt})")
    peak_b = gauges.get("stream.tile_peak_bytes")
    if peak_b is not None:
        tiles = counters.get("stream.tiles", 0)
        derived.append(f"  tiled peak footprint:           "
                       f"{peak_b / 1024:.1f} KiB across {_fmt(tiles)} tiles "
                       f"(O(tile) bound, docs/join.md)")
    dsize = gauges.get("delta.size")
    if dsize is not None:
        druns = gauges.get("delta.runs", 0)
        age = gauges.get("epoch.snapshot_age", 0)
        derived.append(f"  delta residue:                  {_fmt(dsize)} "
                       f"entries in {_fmt(druns)} runs; base snapshot "
                       f"{_fmt(age)} epochs behind")
    if derived:
        lines.append("")
        lines.append("-- derived (paper figures) --")
        lines.extend(derived)

    uniq = _level_series(counters, "engine.unique_nodes.")
    if uniq:
        lines.append("")
        lines.append("-- unique nodes per level (engine frontier, Figs 5-7) --")
        peak = max(v for _, v in uniq)
        for lvl, value in uniq:
            lines.append(f"  l{lvl:<3} {value:>12,}  {_bar(value, peak)}")
    keytx = _level_series(counters, "gpusim.key_transactions.")
    if keytx:
        lines.append("")
        lines.append("-- key transactions per level (gpusim, Fig 2) --")
        peak = max(v for _, v in keytx)
        for lvl, value in keytx:
            lines.append(f"  l{lvl:<3} {value:>12,}  {_bar(value, peak)}")

    if counters:
        lines.append("")
        lines.append("-- counters --")
        for name, value in counters.items():
            lines.append(f"  {name:<34} {_fmt(value):>16}  [{_unit(name)}]")
    if gauges:
        lines.append("")
        lines.append("-- gauges --")
        for name, value in gauges.items():
            lines.append(f"  {name:<34} {_fmt(value):>16}  [{_unit(name)}]")
    if histograms:
        lines.append("")
        lines.append("-- histograms --")
        for name, hist in histograms.items():
            lines.append(
                f"  {name} [{_unit(name)}]: n={_fmt(hist.get('count', 0))} "
                f"mean={_fmt(hist.get('mean', 0.0))} "
                f"{_percentile_cells(hist)} "
                f"min={_fmt(hist.get('min'))} max={_fmt(hist.get('max'))}"
            )
    if spans:
        lines.append("")
        lines.append("-- spans --")
        lines.append(f"  recorded={_fmt(spans.get('count', 0))} "
                     f"dropped={_fmt(spans.get('dropped', 0))}")
        for name, count in spans.get("names", {}).items():
            lines.append(f"  {name:<34} {_fmt(count):>16}")
        processes = spans.get("processes", {})
        if processes:
            lines.append("")
            lines.append("-- merged processes --")
            for pid, entry in processes.items():
                label = entry.get("label") or "?"
                lines.append(f"  pid {pid:<8} {label:<24} "
                             f"{_fmt(entry.get('spans', 0)):>10} spans")
    return "\n".join(lines) + "\n"


def _diff_number(a: Optional[float], b: Optional[float]) -> str:
    if a is None:
        return f"(added) {_fmt(b)}"
    if b is None:
        return f"{_fmt(a)} (removed)"
    delta = b - a
    sign = "+" if delta >= 0 else ""
    rel = f" ({sign}{delta / a:.1%})" if a else ""
    return f"{_fmt(a)} -> {_fmt(b)}  {sign}{_fmt(delta)}{rel}"


def render_diff(a: Dict[str, Any], b: Dict[str, Any],
                label_a: str = "A", label_b: str = "B") -> str:
    """Render counter/gauge/histogram deltas between two snapshots."""
    lines = [f"== obs diff: {label_a} -> {label_b} =="]
    va, vb = a.get("schema_version"), b.get("schema_version")
    if va != vb:
        lines.append(f"!! schema versions differ: {va} vs {vb}; "
                     "deltas may be meaningless")
    for key, title in (("counters", "counters"), ("gauges", "gauges")):
        fa: Dict[str, Any] = a.get(key, {})
        fb: Dict[str, Any] = b.get(key, {})
        names = sorted(set(fa) | set(fb))
        rows = []
        for name in names:
            xa, xb = fa.get(name), fb.get(name)
            if xa == xb:
                continue
            rows.append(f"  {name:<34} {_diff_number(xa, xb)}")
        if rows:
            lines.append("")
            lines.append(f"-- {title} --")
            lines.extend(rows)
    ha: Dict[str, Any] = a.get("histograms", {})
    hb: Dict[str, Any] = b.get("histograms", {})
    rows = []
    for name in sorted(set(ha) | set(hb)):
        xa, xb = ha.get(name), hb.get(name)
        ca = xa.get("count") if xa else None
        cb = xb.get("count") if xb else None
        ma = xa.get("mean") if xa else None
        mb = xb.get("mean") if xb else None
        if ca == cb and ma == mb:
            continue
        rows.append(f"  {name:<34} n: {_diff_number(ca, cb)}")
        if ma != mb:
            rows.append(f"  {'':<34} mean: {_diff_number(ma, mb)}")
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            pa = _hist_quantile(xa, q) if xa else None
            pb = _hist_quantile(xb, q) if xb else None
            if pa != pb:
                rows.append(f"  {'':<34} {label}: {_diff_number(pa, pb)}")
    if rows:
        lines.append("")
        lines.append("-- histograms --")
        lines.extend(rows)
    if len(lines) == 1 or (len(lines) == 2 and va != vb):
        lines.append("(no differences)")
    return "\n".join(lines) + "\n"


__all__ = ["render_report", "render_diff"]
