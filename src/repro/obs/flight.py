"""Always-on flight recorder: a lock-light ring of recent events.

The metrics registry answers *what happened during a recording*; the
flight recorder answers *what just happened* — it is on from import,
costs one list store per event, holds a bounded ring of the most recent
events plus per-operation latency bucket counts, and dumps on demand
(``harmonia-tool obs flight``) or on worker crash.

**Lock-light by construction.**  The write path takes no lock: the ring
slot store and the monotonic index bump are each atomic under the GIL,
and the per-op latency counters are plain ``list[int]`` increments.  A
racing pair of writers can lose one latency count or interleave ring
slots out of order — acceptable for a diagnostic buffer, and the price
of keeping the always-on path at tens of nanoseconds.  Reads
(:meth:`events`, :meth:`dump`) copy the ring and re-order by the event
sequence number, so a dump taken mid-flight is still coherent.

**Crash dumps.**  ``dump_on_crash`` writes
``harmonia-flight-<pid>.json`` into ``$HARMONIA_FLIGHT_DIR`` (default:
the system temp dir; set it to the empty string to disable).  The shard
worker calls it from its crash path, the router from restart handling —
so a post-mortem of a dead worker starts with its last ~few thousand
operations already on disk.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.registry import bucket_quantile
from repro.obs.schema import TIME_EDGES_S

#: Environment variable naming the crash-dump directory ("" disables).
FLIGHT_DIR_ENV = "HARMONIA_FLIGHT_DIR"

#: One ring slot: (seq, wall_s, perf_s, kind, detail).
FlightEvent = Tuple[int, float, float, str, Optional[Dict[str, Any]]]


class FlightRecorder:
    """Bounded ring buffer + per-op latency buckets, always on."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self._ring: List[Optional[FlightEvent]] = [None] * self.capacity
        self._next = 0  # monotonic sequence number, never wraps
        self._latency: Dict[str, List[int]] = {}
        self._lat_edges = TIME_EDGES_S
        self.started_wall_s = time.time()

    # --------------------------------------------------------- write path

    def note(self, kind: str, detail: Optional[Dict[str, Any]] = None,
             ) -> None:
        """Record one event (lock-free; see the module docstring)."""
        seq = self._next
        self._next = seq + 1
        self._ring[seq % self.capacity] = (
            seq, time.time(), time.perf_counter(), kind, detail,
        )

    def latency(self, op: str, seconds: float) -> None:
        """Bump ``op``'s latency bucket (shared ``TIME_EDGES_S`` ladder)."""
        counts = self._latency.get(op)
        if counts is None:
            # Racing first-observers may both build a list; setdefault
            # makes exactly one of them stick (atomic under the GIL).
            counts = self._latency.setdefault(
                op, [0] * (len(self._lat_edges) + 1)
            )
        counts[bisect_right(self._lat_edges, seconds)] += 1

    # ---------------------------------------------------------- read path

    @property
    def events_recorded(self) -> int:
        """Total events ever noted (≥ the ring's current content)."""
        return self._next

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wrap-around since startup."""
        return max(0, self._next - self.capacity)

    def events(self) -> List[FlightEvent]:
        """The buffered events, oldest first (coherent copy)."""
        live = [e for e in list(self._ring) if e is not None]
        live.sort(key=lambda e: e[0])
        return live

    def latency_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-op count/p50/p95/p99 derived from the bucket counters."""
        out: Dict[str, Dict[str, Any]] = {}
        for op in sorted(self._latency):
            counts = list(self._latency[op])
            total = sum(counts)
            out[op] = {
                "count": total,
                "p50_s": bucket_quantile(self._lat_edges, counts, 0.50),
                "p95_s": bucket_quantile(self._lat_edges, counts, 0.95),
                "p99_s": bucket_quantile(self._lat_edges, counts, 0.99),
            }
        return out

    def dump(self, reason: str = "on-demand") -> Dict[str, Any]:
        """JSON-ready dump: identity, ring stats, latencies, events."""
        events = self.events()
        return {
            "flight": 1,
            "pid": os.getpid(),
            "reason": reason,
            "wall_s": time.time(),
            "started_wall_s": self.started_wall_s,
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "dropped": self.dropped,
            "latency": self.latency_summary(),
            "events": [
                {"seq": seq, "wall_s": wall, "perf_s": perf, "kind": kind,
                 "detail": detail}
                for seq, wall, perf, kind, detail in events
            ],
        }

    def dump_to(self, path: str, reason: str = "on-demand") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.dump(reason), fh, indent=1, default=str)
            fh.write("\n")

    def publish(self, rec) -> None:
        """Mirror ring occupancy into a recording registry's gauges
        (``flight.events`` / ``flight.dropped``)."""
        if rec.enabled:
            rec.gauge("flight.events",
                      min(self.events_recorded, self.capacity))
            rec.gauge("flight.dropped", self.dropped)

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self._latency = {}
        self.started_wall_s = time.time()


#: The process-wide recorder — importing this module turns it on.
FLIGHT = FlightRecorder()


def flight_dir() -> Optional[str]:
    """The crash-dump directory, or ``None`` when dumps are disabled."""
    d = os.environ.get(FLIGHT_DIR_ENV)
    if d is None:
        return tempfile.gettempdir()
    return d or None


def crash_dump_path(pid: Optional[int] = None) -> Optional[str]:
    """Where this (or the given) pid's crash dump lands, if enabled."""
    d = flight_dir()
    if d is None:
        return None
    return os.path.join(d, f"harmonia-flight-{pid or os.getpid()}.json")


def dump_on_crash(reason: str) -> Optional[str]:
    """Best-effort crash dump of :data:`FLIGHT`; returns the path or
    ``None`` (disabled or unwritable — a crash path must not raise)."""
    path = crash_dump_path()
    if path is None:
        return None
    try:
        FLIGHT.dump_to(path, reason=reason)
    except OSError:
        return None
    return path


__all__ = [
    "FLIGHT",
    "FLIGHT_DIR_ENV",
    "FlightRecorder",
    "FlightEvent",
    "crash_dump_path",
    "dump_on_crash",
    "flight_dir",
]
