"""Exporters: JSON snapshots and Chrome ``trace_event`` timelines.

The Chrome trace targets ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): a ``{"traceEvents": [...]}`` object of
complete ("X") events with microsecond timestamps relative to the
registry's ``t0_s``.  Thread tracks come from the registry's per-thread
track ids — the overlapped stream executor's sort spans land on worker
tracks while traverse/scatter stay on track 0, so §4.1.3's overlap is
directly visible as vertically stacked, horizontally overlapping bars.

Registries that merged remote payloads
(:meth:`~repro.obs.registry.MetricsRegistry.merge_remote`) additionally
render one process lane per worker pid: the local process keeps
``pid 1`` (its lane layout is unchanged), each shard worker appears
under its real OS pid with its own thread tracks, and every lane shares
the router's clock (``perf_counter`` is system-wide on Linux) — so a
routed request reads left-to-right as scatter → per-shard execution →
gather across process lanes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry

_TRACK_NAMES = {0: "main (traverse/scatter)"}


def chrome_trace(registry: MetricsRegistry) -> Dict[str, Any]:
    """Render the registry's spans as a Chrome trace_event object."""
    t0 = registry.t0_s
    events: List[Dict[str, Any]] = []
    tracks = {0}
    for name, cat, start_s, end_s, track, depth, args in registry.spans():
        tracks.add(track)
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (start_s - t0) * 1e6,
            "dur": max(end_s - start_s, 0.0) * 1e6,
            "pid": 1,
            "tid": track,
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        events.append(event)
    metadata: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": "harmonia-repro"},
    }, {
        "name": "process_sort_index",
        "ph": "M",
        "pid": 1,
        "args": {"sort_index": 0},
    }]
    for track in sorted(tracks):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": track,
            "args": {"name": _TRACK_NAMES.get(track, f"worker-{track}")},
        })
        metadata.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": 1,
            "tid": track,
            "args": {"sort_index": track},
        })
    # Remote process lanes (merged shard-worker registries).
    for order, (pid, entry) in enumerate(
        sorted(registry.remote_processes().items()), start=1
    ):
        label = entry["label"] or entry["prefix"].rstrip(".") or f"pid-{pid}"
        remote_tracks = {0}
        for name, cat, start_s, end_s, track, depth, args in entry["spans"]:
            remote_tracks.add(track)
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (start_s - t0) * 1e6,
                "dur": max(end_s - start_s, 0.0) * 1e6,
                "pid": pid,
                "tid": track,
            }
            if args:
                event["args"] = {k: _jsonable(v) for k, v in args.items()}
            events.append(event)
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"{label} (pid {pid})"},
        })
        metadata.append({
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "args": {"sort_index": order},
        })
        for track in sorted(remote_tracks):
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": track,
                "args": {"name": "main" if track == 0
                         else f"worker-{track}"},
            })
            metadata.append({
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": track,
                "args": {"sort_index": track},
            })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "dropped_spans":
                      registry.dropped_spans},
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # numpy scalars and anything else: go through item()/str()
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def write_chrome_trace(registry: MetricsRegistry,
                       path: Union[str, Path]) -> Path:
    """Write the span timeline as a ``chrome://tracing`` JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(registry)) + "\n")
    return path


def write_snapshot(snapshot: Dict[str, Any],
                   path: Union[str, Path]) -> Path:
    """Write a registry snapshot as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a snapshot from disk.

    Accepts either a bare snapshot (``repro obs record`` output) or a
    BENCH-style wrapper whose ``metrics`` key holds the snapshot, so
    ``repro obs diff`` works directly on ``BENCH_*.json`` files.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load metrics from {path}: {exc}") from exc
    if isinstance(data, dict) and "schema_version" not in data \
            and isinstance(data.get("metrics"), dict):
        data = data["metrics"]
    if not isinstance(data, dict):
        raise ConfigError(f"{path} does not contain a metrics snapshot")
    return data


__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_snapshot",
    "load_metrics",
]
