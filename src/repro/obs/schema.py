"""Metric name catalogue and snapshot validation for :mod:`repro.obs`.

Every metric the instrumented hot paths emit is declared here — name,
kind, unit, and (for histograms) the fixed bucket edges.  The catalogue
serves three purposes:

* **drift detection** — :func:`validate_snapshot` rejects snapshots that
  contain names not in the catalogue, so an instrumentation site that
  invents a metric without documenting it fails CI rather than silently
  shipping an untracked counter;
* **self-describing exports** — exporters and the report renderer look
  units and docs up here instead of hard-coding them;
* **stable schema** — :data:`SCHEMA_VERSION` is embedded in every
  snapshot; consumers (``repro obs diff``, the bench ``metrics``
  sections) refuse to compare snapshots across incompatible versions.

Names are dotted, ``subsystem.metric``; per-level families use an ``l``
prefix on the level index (``engine.unique_nodes.l0`` … ``l{h-1}``) and
are declared once with a trailing ``*`` wildcard.  The catalogue is the
single source of truth for docs/observability.md's table.

**Namespaces.**  Metrics merged from another process's registry
(:meth:`~repro.obs.registry.MetricsRegistry.merge_remote`) carry an
instance prefix such as ``shard[0].`` — ``shard[0].engine.batches`` is
the worker-0 copy of ``engine.batches``.  :func:`lookup` and
:func:`validate_snapshot` strip any chain of ``name[index].`` prefixes
before consulting the catalogue, so namespaced metrics validate against
the same declarations as local ones (:func:`strip_namespace`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Version of the snapshot layout *and* the name catalogue semantics.
#: Bump when a metric is renamed/removed or the snapshot shape changes;
#: adding new names is backward compatible and needs no bump.
SCHEMA_VERSION = 1

#: Metric families a snapshot may contain, in snapshot-key order.
KINDS = ("counter", "gauge", "histogram", "span")

# Shared fixed bucket ladders.  Histograms are fixed-bucket by design
# (bounded memory, mergeable across snapshots); these 1-2-5 / power-of-two
# ladders cover the dynamic ranges the instrumented paths produce.
TIME_EDGES_S: Tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-6, 1) for m in (1.0, 2.0, 5.0)
)  # 1µs … 5s
COUNT_EDGES: Tuple[float, ...] = tuple(float(1 << i) for i in range(0, 25))
BITS_EDGES: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0,
                                 24.0, 32.0, 40.0, 48.0, 56.0, 64.0)
DEPTH_EDGES: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

#: Fallback ladder for histogram names observed before being catalogued
#: (kept so ad-hoc use in notebooks works; validation still flags them).
DEFAULT_EDGES: Tuple[float, ...] = COUNT_EDGES


@dataclass(frozen=True)
class MetricSpec:
    """One catalogue entry.  ``name`` may end in ``*`` (prefix wildcard)
    for families whose tail is dynamic (per-level counters, bench rows)."""

    name: str
    kind: str  # one of KINDS
    unit: str
    doc: str
    edges: Optional[Tuple[float, ...]] = None  # histograms only

    def matches(self, name: str) -> bool:
        if self.name.endswith("*"):
            prefix = self.name[:-1]
            return name.startswith(prefix) and len(name) > len(prefix)
        return name == self.name


CATALOGUE: List[MetricSpec] = [
    # ------------------------------------------------------------ engine
    MetricSpec("engine.batches", "counter", "batches",
               "BatchQueryEngine.execute calls"),
    MetricSpec("engine.queries", "counter", "queries",
               "point lookups executed by the compacted engine"),
    MetricSpec("engine.levels.grouped", "counter", "levels",
               "level executions taken by the grouped (per-run searchsorted) "
               "strategy"),
    MetricSpec("engine.levels.broadcast", "counter", "levels",
               "level executions that fell back to the broadcast compare"),
    MetricSpec("engine.levels.capped", "counter", "levels",
               "broadcast level executions that swept only the per-level NTG "
               "scan window (a multiple of the level's degree) instead of "
               "the full key row"),
    MetricSpec("engine.node_reads", "counter", "nodes",
               "distinct node-row reads performed (sum of frontier runs over "
               "levels) — the host analog of gld_transactions"),
    MetricSpec("engine.chunks", "counter", "chunks",
               "contiguous query chunks executed (1 per batch unless sharded)"),
    MetricSpec("engine.hinted_batches", "counter", "batches",
               "batches run through the monotone dual-walk path "
               "(execute_hinted: frontier lower-bound hints + subtree "
               "pruning)"),
    MetricSpec("engine.unique_nodes.l*", "counter", "nodes",
               "frontier runs (= distinct nodes for a PSA-sorted batch) at "
               "tree level l<N> — Figure 12's per-level transaction analog"),
    MetricSpec("engine.run_length", "histogram", "queries/run",
               "mean frontier run length per level execution (batch size / "
               "runs); the PSA locality the engine exploits",
               edges=COUNT_EDGES),
    # ------------------------------------------------------------ stream
    MetricSpec("stream.batches", "counter", "batches",
               "batches consumed by the streaming executor"),
    MetricSpec("stream.queries", "counter", "queries",
               "queries streamed end to end"),
    MetricSpec("stream.sort_passes", "counter", "passes",
               "radix counting passes executed by the stream's sort stage"),
    MetricSpec("stream.queue_depth", "histogram", "batches",
               "sorted batches in flight ahead of the traverse stage, sampled "
               "at each consume (bounded by depth - 1)", edges=DEPTH_EDGES),
    MetricSpec("stream.sort_s", "histogram", "s",
               "per-batch sort-stage latency", edges=TIME_EDGES_S),
    MetricSpec("stream.traverse_s", "histogram", "s",
               "per-batch traverse-stage latency", edges=TIME_EDGES_S),
    MetricSpec("stream.scatter_s", "histogram", "s",
               "per-batch ordered-delivery (scatter) latency",
               edges=TIME_EDGES_S),
    MetricSpec("stream.wall_s", "gauge", "s",
               "wall clock of the last stream run"),
    MetricSpec("stream.throughput_qps", "gauge", "queries/s",
               "end-to-end throughput of the last stream run"),
    MetricSpec("stream.occupancy", "gauge", "ratio",
               "fraction of the wall during which the traverse stage was busy"),
    MetricSpec("stream.overlap_s", "gauge", "s",
               "measured wall time a sort and a traverse/scatter were in "
               "flight simultaneously (§4.1.3's overlap)"),
    MetricSpec("stream.sort_hidden_ratio", "gauge", "ratio",
               "steady-state sort / traverse time; <= 1.0 means §4.1.3's "
               "hiding condition holds"),
    MetricSpec("stream.tiles", "counter", "tiles",
               "fixed-size tiles driven through the bounded-memory tile "
               "scheduler (join probes or tiled stream batches)"),
    MetricSpec("stream.tile_peak_bytes", "gauge", "bytes",
               "measured peak resident traversal footprint of the last "
               "tiled run (staging ring + engine scratch) — the O(tile) "
               "bound the FPGA level-wise discipline promises"),
    # -------------------------------------------------------------- join
    MetricSpec("join.joins", "counter", "joins",
               "merge_join invocations (dual-tree merge-joins)"),
    MetricSpec("join.probes", "counter", "probes",
               "probe-side keys streamed through dual-tree joins"),
    MetricSpec("join.matches", "counter", "probes",
               "probe keys that found a build-side partner"),
    MetricSpec("join.selectivity", "gauge", "ratio",
               "matched fraction of the last join's probe stream"),
    # --------------------------------------------------------------- ntg
    MetricSpec("ntg.level_degree.l*", "gauge", "threads",
               "thread-group width chosen for tree level l<N> "
               "(harmonia.cuh's ntg_degree[depth]; non-increasing with "
               "depth, last prepared batch wins)"),
    MetricSpec("ntg.profile_s", "gauge", "s",
               "wall time of the last §4.2 static-profiling selection "
               "(cache misses only; cached selections skip profiling)"),
    # --------------------------------------------------------------- psa
    MetricSpec("psa.batches", "counter", "batches",
               "query batches prepared for issue (PSA or identity)"),
    MetricSpec("psa.bits_sorted", "histogram", "bits",
               "most-significant bits sorted per prepared batch (Equation 2)",
               edges=BITS_EDGES),
    MetricSpec("psa.perm_displacement", "histogram", "slots",
               "mean |issue position - arrival position| per batch — "
               "permutation locality of the partial sort", edges=COUNT_EDGES),
    # -------------------------------------------------------------- sort
    MetricSpec("sort.passes", "counter", "passes",
               "stable counting passes executed by partial_radix_argsort"),
    MetricSpec("sort.keys", "counter", "keys",
               "elements fed through partial_radix_argsort"),
    # ------------------------------------------------------------ gpusim
    MetricSpec("gpusim.kernels", "counter", "kernels",
               "simulated search-kernel invocations"),
    MetricSpec("gpusim.queries", "counter", "queries",
               "queries executed by simulated kernels"),
    MetricSpec("gpusim.warps", "counter", "warps",
               "warps launched by simulated kernels"),
    MetricSpec("gpusim.gld_transactions", "counter", "transactions",
               "global-memory transactions (nvprof gld_transactions)"),
    MetricSpec("gpusim.gld_requests", "counter", "requests",
               "warp global-memory requests (nvprof gld_requests)"),
    MetricSpec("gpusim.warp_steps", "counter", "steps",
               "warp-serialized execution steps (divergence cost unit)"),
    MetricSpec("gpusim.const_requests", "counter", "requests",
               "constant-memory child-region accesses (footnote 1)"),
    MetricSpec("gpusim.readonly_requests", "counter", "requests",
               "read-only-cache child-region accesses (§3.1 spill)"),
    MetricSpec("gpusim.l1_requests", "counter", "requests",
               "key-region warp loads served entirely from L1 (intra-level "
               "line reuse under narrow per-level NTG degrees)"),
    MetricSpec("gpusim.key_transactions.l*", "counter", "transactions",
               "key-region transactions at tree level l<N> (Figure 2's "
               "per-level quantity)"),
    MetricSpec("gpusim.transactions_per_warp", "gauge", "transactions/warp",
               "mean per-warp key transactions over levels — Figure 2's "
               "headline number (last simulated kernel)"),
    MetricSpec("gpusim.transactions_per_request", "gauge", "ratio",
               "memory divergence: transactions per request, 1.0 = coalesced "
               "(last simulated kernel)"),
    MetricSpec("gpusim.warp_coherence", "gauge", "ratio",
               "coherent fraction of warp issue slots (footnote 4; last "
               "simulated kernel)"),
    MetricSpec("gpusim.utilization", "gauge", "ratio",
               "useful / executed lane comparisons (Figure 9; last simulated "
               "kernel)"),
    MetricSpec("gpusim.pipeline.*", "gauge", "s|ratio",
               "host-device pipeline model stage times and occupancy, "
               "namespaced by mode (serial / double_buffer / pipeline)"),
    MetricSpec("gpusim.dualwalk.*", "gauge", "transactions|x",
               "dual-walk join kernel model: probe-side leaf-scan and "
               "hinted-descent transactions vs the per-key baseline "
               "(leaf_scan_tx / descent_tx / naive_tx / tx_speedup)"),
    # ------------------------------------------------------------ update
    MetricSpec("update.batches", "counter", "batches",
               "batches applied by the vectorized update pipeline"),
    MetricSpec("update.ops", "counter", "ops",
               "operations fed through the vectorized update pipeline"),
    MetricSpec("update.inplace_ops", "counter", "ops",
               "ops in update-only leaf groups, resolved by the fully "
               "vectorized in-place path"),
    MetricSpec("update.single_ops", "counter", "ops",
               "single-op insert/delete groups resolved by the vectorized "
               "row-shift path (no per-op replay)"),
    MetricSpec("update.replay_ops", "counter", "ops",
               "ops in insert/delete leaf groups, replayed per leaf"),
    MetricSpec("update.split_leaves", "counter", "leaves",
               "leaves staged on auxiliary nodes (§3.2.2 split/merge path)"),
    MetricSpec("update.dirty_leaves", "counter", "leaves",
               "leaves the movement pass could not move verbatim"),
    MetricSpec("update.moved_leaves", "counter", "leaves",
               "clean leaf rows block-moved verbatim by the movement pass"),
    MetricSpec("update.rebuilt_leaves", "counter", "leaves",
               "leaves re-chunked from dirty runs by the movement pass"),
    MetricSpec("update.ops_per_leaf", "histogram", "ops/leaf",
               "mean operations per touched leaf, one observation per batch",
               edges=COUNT_EDGES),
    MetricSpec("update.throughput_ops", "gauge", "ops/s",
               "end-to-end throughput of the last vectorized batch "
               "(plan + apply + movement)"),
    MetricSpec("update.absorbed_ops", "counter", "ops",
               "ops absorbed in place by gapped leaf slack (no movement)"),
    MetricSpec("update.windows", "counter", "windows",
               "plan_window chunks streamed through the gapped planner"),
    MetricSpec("update.movement_epochs", "counter", "epochs",
               "compaction epochs the gapped executor actually ran"),
    MetricSpec("update.gap_absorption", "gauge", "ratio",
               "absorbed / total ops of the last gapped batch (the "
               "fraction that dodged the movement rebuild)"),
    MetricSpec("layout.occupancy", "gauge", "ratio",
               "keys / leaf slots of the published layout (gapped drift "
               "observable behind the occupancy_low watermark)"),
    MetricSpec("layout.compaction_pending", "gauge", "ratio",
               "fraction of leaves in the gapped compaction set "
               "(underflowed or packed full) after the last batch"),
    # ------------------------------------------------------- epoch / delta
    MetricSpec("epoch.flushes", "counter", "flushes",
               "concurrent-mode flushes: batches resolved and published as "
               "delta runs (no rebuild on the writer's path)"),
    MetricSpec("epoch.drains", "counter", "drains",
               "background drains: delta runs folded into a fresh base "
               "snapshot"),
    MetricSpec("epoch.drained_ops", "counter", "entries",
               "net delta entries folded into the base across all drains"),
    MetricSpec("delta.collapses", "counter", "collapses",
               "delta run-collapse events (runs folded last-wins once the "
               "undrained suffix exceeds max_runs)"),
    MetricSpec("delta.overlay_keys", "counter", "keys",
               "point-lookup keys passed through the snapshot-then-delta "
               "overlay"),
    MetricSpec("delta.size", "gauge", "entries",
               "entries currently held by the delta index (after the last "
               "flush/drain)"),
    MetricSpec("delta.runs", "gauge", "runs",
               "published sorted runs currently in the delta index"),
    MetricSpec("epoch.snapshot_age", "gauge", "epochs",
               "published epochs the base snapshot trails the visible state "
               "(0 = fully drained)"),
    # ------------------------------------------------------------- shard
    MetricSpec("shard.batches", "counter", "batches",
               "query/update batches routed by the ShardedTree front-end"),
    MetricSpec("shard.queries", "counter", "queries",
               "point lookups fanned out across shard workers"),
    MetricSpec("shard.ops", "counter", "ops",
               "update operations fanned out across shard workers"),
    MetricSpec("shard.range_queries", "counter", "queries",
               "range scans served by the sharded global-scan path"),
    MetricSpec("shard.restarts", "counter", "workers",
               "worker processes restarted and rebuilt from snapshot + "
               "op-log replay"),
    MetricSpec("shard.rebalances", "counter", "rebalances",
               "key-space re-cuts performed by ShardedTree.rebalance"),
    MetricSpec("shard.batch_size", "histogram", "items",
               "per-shard slice size of each routed batch (scatter balance)",
               edges=COUNT_EDGES),
    MetricSpec("shard.skew", "gauge", "ratio",
               "shard size skew (max shard / ideal share) at the last "
               "rebalance check"),
    MetricSpec("shard.request_s", "histogram", "s",
               "end-to-end router request latency (scatter through gather), "
               "one observation per routed batch — obs report derives "
               "p50/p95/p99 from it", edges=TIME_EDGES_S),
    # --------------------------------------------------------- obs / trace
    MetricSpec("obs.dropped_spans", "counter", "spans",
               "spans discarded because the registry hit max_spans (the "
               "snapshot-visible mirror of the drop count; never silent)"),
    MetricSpec("trace.requests", "counter", "requests",
               "router requests that carried a trace context into the "
               "shard workers"),
    MetricSpec("trace.spans_merged", "counter", "spans",
               "worker-side spans merged back into the router registry"),
    MetricSpec("flight.events", "gauge", "events",
               "events currently buffered by the always-on flight recorder "
               "(bounded by its ring capacity)"),
    MetricSpec("flight.dropped", "gauge", "events",
               "flight-recorder events overwritten by ring wrap-around "
               "since startup"),
    # ------------------------------------------------------- epoch waits
    MetricSpec("epoch.publish_wait_s", "histogram", "s",
               "time spent waiting for the publish lock on the "
               "flush/drain publication path — overlay-vs-drain "
               "contention made visible", edges=TIME_EDGES_S),
    # ------------------------------------------------------------- bench
    MetricSpec("bench.*", "gauge", "s|x",
               "benchmark emitter timing blocks (BENCH_*.json metrics "
               "sections)"),
    # ------------------------------------------------------------- spans
    MetricSpec("engine.execute", "span", "-",
               "one compacted-engine batch execution"),
    MetricSpec("stream.run", "span", "-",
               "one full stream run (all batches)"),
    MetricSpec("stream.tile_run", "span", "-",
               "one tile-scheduled batch (all tiles of one run)"),
    MetricSpec("join.run", "span", "-",
               "one dual-tree merge-join (probe extraction through "
               "classification)"),
    MetricSpec("stream.sort", "span", "-",
               "sort stage of one batch (worker thread in overlap mode)"),
    MetricSpec("stream.traverse", "span", "-",
               "traverse stage of one batch (main thread)"),
    MetricSpec("stream.scatter", "span", "-",
               "ordered delivery of one batch"),
    MetricSpec("psa.prepare", "span", "-",
               "prepare_batch: partial sort + gather to issue order"),
    MetricSpec("update.plan", "span", "-",
               "update plan stage: whole-batch leaf routing + stable "
               "grouping + classification"),
    MetricSpec("update.apply", "span", "-",
               "update apply stage: vectorized in-place writes + per-leaf "
               "replay of structural groups"),
    MetricSpec("update.movement", "span", "-",
               "update movement stage: leaf plan + block rebuild of the "
               "regions"),
    MetricSpec("delta.overlay", "span", "-",
               "snapshot-then-delta overlay pass of one lookup batch"),
    MetricSpec("epoch.publish", "span", "-",
               "concurrent flush: batch resolution + delta-run publication"),
    MetricSpec("epoch.drain", "span", "-",
               "one background drain: shadow rebuild + base swap"),
    MetricSpec("shard.scatter", "span", "-",
               "routing pass of one sharded batch (searchsorted + stable "
               "grouping)"),
    MetricSpec("shard.dispatch", "span", "-",
               "concurrent worker round-trip of one sharded batch"),
    MetricSpec("shard.gather", "span", "-",
               "reassembly of worker results into caller order"),
    MetricSpec("shard.request", "span", "-",
               "one whole routed request at the ShardedTree front-end "
               "(scatter through gather); carries the minted trace_id"),
    MetricSpec("worker.deserialize", "span", "-",
               "worker-side receive of a request's arrays off the shared "
               "block"),
    MetricSpec("worker.execute", "span", "-",
               "worker-side search/apply/range execution (engine and "
               "epoch spans nest inside)"),
    MetricSpec("worker.reply", "span", "-",
               "worker-side reply serialization back through the shared "
               "block"),
]

_EXACT: Dict[str, MetricSpec] = {s.name: s for s in CATALOGUE
                                 if not s.name.endswith("*")}
_WILDCARDS: List[MetricSpec] = [s for s in CATALOGUE if s.name.endswith("*")]

#: One ``instance[index].`` namespace segment (e.g. ``shard[3].``).
_NAMESPACE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*\[\d+\]\.")


def strip_namespace(name: str) -> str:
    """Strip every leading ``instance[index].`` segment from ``name``.

    ``shard[0].engine.batches`` → ``engine.batches``; plain names pass
    through unchanged.  This is how merged remote metrics resolve against
    the same catalogue entries as their local counterparts.
    """
    while True:
        m = _NAMESPACE_RE.match(name)
        if m is None:
            return name
        name = name[m.end():]


def lookup(name: str) -> Optional[MetricSpec]:
    """Resolve a concrete metric name against the catalogue
    (namespace-aware: ``shard[0].engine.batches`` resolves like
    ``engine.batches``)."""
    spec = _EXACT.get(name)
    if spec is not None:
        return spec
    for wild in _WILDCARDS:
        if wild.matches(name):
            return wild
    bare = strip_namespace(name)
    if bare != name:
        return lookup(bare)
    return None


def default_edges_for(name: str) -> Tuple[float, ...]:
    """Bucket edges for a histogram name (catalogue or the fallback)."""
    spec = lookup(name)
    if spec is not None and spec.edges is not None:
        return spec.edges
    return DEFAULT_EDGES


def validate_snapshot(snapshot) -> List[str]:
    """Check a snapshot dict against the catalogue.

    Returns a list of problems (empty = valid): structural issues, schema
    version mismatches, unknown metric names, and names recorded under the
    wrong kind.  ``repro obs validate`` turns a non-empty list into a
    non-zero exit code — the CI tripwire against instrumentation drift.
    """
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is {type(snapshot).__name__}, expected dict"]
    version = snapshot.get("schema_version")
    if version is None:
        problems.append("missing schema_version")
    elif version != SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} != supported {SCHEMA_VERSION}"
        )
    for kind, key in (("counter", "counters"), ("gauge", "gauges"),
                      ("histogram", "histograms")):
        family = snapshot.get(key, {})
        if not isinstance(family, dict):
            problems.append(f"{key} is {type(family).__name__}, expected dict")
            continue
        for name in family:
            spec = lookup(name)
            if spec is None:
                problems.append(f"unknown metric name {name!r} ({key})")
            elif spec.kind != kind:
                problems.append(
                    f"{name!r} recorded as {kind} but catalogued as "
                    f"{spec.kind}"
                )
    for name, hist in snapshot.get("histograms", {}).items():
        if not isinstance(hist, dict):
            problems.append(f"histogram {name!r} is not a dict")
            continue
        edges = hist.get("edges", [])
        counts = hist.get("counts", [])
        if len(counts) != len(edges) + 1:
            problems.append(
                f"histogram {name!r}: {len(counts)} buckets for "
                f"{len(edges)} edges (want edges + 1)"
            )
        elif hist.get("count") != sum(counts):
            problems.append(
                f"histogram {name!r}: count {hist.get('count')} != bucket "
                f"sum {sum(counts)}"
            )
    spans = snapshot.get("spans", {})
    if isinstance(spans, dict):
        for name in spans.get("names", {}):
            spec = lookup(name)
            if spec is None:
                problems.append(f"unknown span name {name!r}")
            elif spec.kind != "span":
                problems.append(
                    f"{name!r} recorded as span but catalogued as {spec.kind}"
                )
    return problems


__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "MetricSpec",
    "CATALOGUE",
    "TIME_EDGES_S",
    "COUNT_EDGES",
    "BITS_EDGES",
    "DEPTH_EDGES",
    "DEFAULT_EDGES",
    "lookup",
    "strip_namespace",
    "default_edges_for",
    "validate_snapshot",
]
