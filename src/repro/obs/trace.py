"""Cross-process request tracing for the sharded serving tier.

The router (:class:`repro.shard.router.ShardedTree`) mints a trace id
per routed request and ships a small :class:`TraceContext` dict inside
the existing ``ShardChannel`` command tuples.  Each worker records its
own spans (``worker.deserialize`` / ``worker.execute`` /
``worker.reply``, plus whatever the engine and epoch paths nest inside)
into a per-process registry, exports it with
:meth:`~repro.obs.registry.MetricsRegistry.export_remote` right after
the reply, and the router folds the payload back with
:meth:`~repro.obs.registry.MetricsRegistry.merge_remote` under a
``shard[i].`` namespace — one registry, one Chrome trace, per-process
lanes.

**Activation.**  Tracing rides the ambient recorder: it is on exactly
when the router runs inside an ``obs.recording()`` block (or with a
``TraceConfig`` registry).  The default state — no recording — keeps
the wire protocol identical to the untraced one; the per-request cost
of the disabled path is one ``rec.enabled`` check.

**Clocks.**  ``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux —
system-wide, not per-process — so worker span timestamps are directly
comparable to the router's and need no offset arithmetic when merged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

import repro.obs as obs
from repro.obs.registry import MetricsRegistry


def new_trace_id() -> str:
    """Mint a 16-hex-char id, unique across processes (urandom)."""
    return os.urandom(8).hex()


def shard_prefix(index: int) -> str:
    """The merge namespace for shard ``index`` (``shard[3].``)."""
    return f"shard[{index}]."


@dataclass(frozen=True)
class TraceContext:
    """The per-request context that crosses the process boundary.

    ``trace_id`` ties every span of one routed request together;
    ``shard`` is filled in per fan-out leg so a worker can label its
    spans without knowing its own router-side index.
    """

    trace_id: str
    shard: int = -1

    @classmethod
    def mint(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id())

    def for_shard(self, shard: int) -> Dict[str, Any]:
        """The wire dict appended to a shard's command tuple."""
        return {"trace_id": self.trace_id, "shard": int(shard)}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse a wire dict; ``None`` for anything that is not one
        (untraced requests carry no context at all)."""
        if not isinstance(payload, dict) or "trace_id" not in payload:
            return None
        return cls(trace_id=str(payload["trace_id"]),
                   shard=int(payload.get("shard", -1)))


# --------------------------------------------------------------- worker side

#: Per-worker-process registry, created on the first traced request.
_worker_registry: Optional[MetricsRegistry] = None


def worker_registry() -> MetricsRegistry:
    """The worker process's trace registry (created on first use).

    Installing it as the ambient recorder *permanently* — not scoped to
    the request — is deliberate: the PR 7 background drain thread runs
    between requests, and its ``epoch.drain`` / ``epoch.publish`` spans
    must land somewhere.  They ship with the next traced request's
    export, which is exactly the flight-recorder semantics we want for
    a long-lived worker.
    """
    global _worker_registry
    if _worker_registry is None:
        _worker_registry = MetricsRegistry(max_spans=50_000)
        obs.active = _worker_registry
    return _worker_registry


def export_worker_trace(label: str) -> Optional[Dict[str, Any]]:
    """Export-and-clear the worker registry for the reply's trace
    message; ``None`` when no traced request ever reached this worker."""
    if _worker_registry is None:
        return None
    return _worker_registry.export_remote(label=label, clear=True)


def reset_worker_registry() -> None:
    """Drop the worker registry (tests; fork-safety after re-exec)."""
    global _worker_registry
    if _worker_registry is not None:
        if obs.active is _worker_registry:
            obs.active = obs.NULL_RECORDER
        _worker_registry = None


__all__ = [
    "TraceContext",
    "new_trace_id",
    "shard_prefix",
    "worker_registry",
    "export_worker_trace",
    "reset_worker_registry",
]
