"""Metrics registry: counters, gauges, fixed-bucket histograms, spans.

The recording model is two-state by design:

* **off** (the default) — the module-level :data:`NULL_RECORDER` is
  active.  Instrumented hot paths read ``obs.active`` (one module
  attribute lookup), test ``rec.enabled`` (False) and skip everything
  else, so shipping instrumentation costs nothing measurable;
* **on** — ``with obs.recording() as rec:`` swaps a
  :class:`MetricsRegistry` in.  Every mutation takes the registry lock,
  so concurrent ``search_stream`` calls (and the stream executor's sort
  worker threads) record into one registry safely.

Instrumentation sites record at *stats boundaries* — after a batch
execution, per pipeline stage — never inside per-element loops, so the
enabled path stays cheap too (a handful of locked dict updates per
batch).

Counters saturate at int64 bounds instead of overflowing (snapshots stay
valid JSON for consumers that parse into fixed-width integers).
Histograms are fixed-bucket (edges from the :mod:`~repro.obs.schema>`
catalogue): bucket ``0`` is ``(-inf, edges[0])``, bucket ``i`` is
``[edges[i-1], edges[i])``, and the last bucket is ``[edges[-1], inf)``.
Spans are nestable wall-clock timers (per-thread depth tracking) that
export to Chrome ``trace_event`` timelines via
:func:`repro.obs.export.chrome_trace`; bounded by ``max_spans`` so a
long stream cannot grow memory without limit (drops are counted, never
silent).
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.schema import SCHEMA_VERSION, default_edges_for

INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)

_clock = time.perf_counter


def _saturate(value: int) -> int:
    if value > INT64_MAX:
        return INT64_MAX
    if value < INT64_MIN:
        return INT64_MIN
    return value


def bucket_quantile(
    edges: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> Optional[float]:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    Linear interpolation inside the bucket holding the target rank; the
    open underflow/overflow buckets clamp to ``lo`` / ``hi`` (the
    histogram's observed min/max) when known, else to the nearest edge.
    Returns ``None`` for an empty histogram.  This is the estimator
    behind the p50/p95/p99 columns of ``obs report`` — exact to within
    one bucket of the 1-2-5 ladders the catalogue declares.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cum = 0
    for i, c in enumerate(counts):
        if cum + c >= target and c > 0:
            left = edges[i - 1] if i > 0 else (
                lo if lo is not None else edges[0]
            )
            right = edges[i] if i < len(edges) else (
                hi if hi is not None else edges[-1]
            )
            # The observed extrema bound every bucket, not just the open
            # ones — with them, a single-valued histogram is exact.
            if lo is not None and left < lo:
                left = lo
            if hi is not None and right > hi:
                right = hi
            if right < left:
                right = left
            frac = (target - cum) / c
            return left + (right - left) * frac
        cum += c
    return hi if hi is not None else float(edges[-1])


class NullSpan:
    """Reusable no-op context manager (the disabled ``span()``)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullRecorder:
    """The disabled recorder: every method is a no-op.

    A singleton (:data:`NULL_RECORDER`) sits in ``obs.active`` whenever no
    recording is in progress; instrumented code may either call methods
    blindly (no-ops) or hoist ``if rec.enabled:`` around a block of
    recordings — both are correct, the guard is just cheaper.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, cat: str = "span", **args) -> NullSpan:
        return _NULL_SPAN

    def span_at(self, name: str, start_s: float, end_s: float,
                cat: str = "span", tid: Optional[int] = None, **args) -> None:
        pass

    def snapshot(self) -> None:
        return None


NULL_RECORDER = NullRecorder()


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``edges`` must be strictly increasing; values land in
    ``len(edges) + 1`` buckets with left-closed intervals (a value equal
    to an edge belongs to the bucket *starting* at that edge).
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ConfigError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_right(self.edges, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated ``q``-quantile (see :func:`bucket_quantile`)."""
        lo = self.min if self.count else None
        hi = self.max if self.count else None
        return bucket_quantile(self.edges, self.counts, q, lo, hi)

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`to_dict` payload into this one.

        Bucketwise count addition — requires identical edges (both sides
        come from the same schema catalogue, so a mismatch means the
        processes disagree on the schema and merging would corrupt both).
        """
        edges = tuple(float(e) for e in payload["edges"])
        if edges != self.edges:
            raise ConfigError(
                f"cannot merge histograms with different edges: "
                f"{edges} vs {self.edges}"
            )
        counts = payload["counts"]
        if len(counts) != len(self.counts):
            raise ConfigError(
                f"histogram payload has {len(counts)} buckets, "
                f"expected {len(self.counts)}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        if payload.get("min") is not None and payload["min"] < self.min:
            self.min = float(payload["min"])
        if payload.get("max") is not None and payload["max"] > self.max:
            self.max = float(payload["max"])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Span:
    """Nestable wall-clock timer; records a completed span on exit."""

    __slots__ = ("_registry", "name", "cat", "args", "start_s", "end_s",
                 "depth")

    def __init__(self, registry: "MetricsRegistry", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._registry = registry
        self.name = name
        self.cat = cat
        self.args = args
        self.start_s = 0.0
        self.end_s = 0.0
        self.depth = 0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        self.depth = len(stack)
        stack.append(self)
        self.start_s = _clock()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_s = _clock()
        stack = self._registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._registry._add_span(
            self.name, self.cat, self.start_s, self.end_s, None, self.depth,
            self.args,
        )
        return False


#: One completed span: (name, cat, start_s, end_s, track, depth, args).
SpanRecord = Tuple[str, str, float, float, int, int, Dict[str, Any]]


class MetricsRegistry:
    """Thread-safe sink for the instrumentation in the hot paths.

    All mutation methods take the registry lock; reads for export
    (:meth:`snapshot`, the exporters in :mod:`repro.obs.export`) do too,
    so snapshots taken while a stream is running are consistent.

    ``record_spans=False`` keeps counters/gauges/histograms but drops
    span capture — for long recordings where only the aggregates matter.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000,
                 record_spans: bool = True) -> None:
        if max_spans < 0:
            raise ConfigError(f"max_spans must be >= 0, got {max_spans}")
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[SpanRecord] = []
        self.max_spans = int(max_spans)
        self.record_spans = bool(record_spans)
        self.dropped_spans = 0
        #: perf_counter origin — span timestamps export relative to this.
        self.t0_s = _clock()
        self._locals = threading.local()
        self._tracks: Dict[int, int] = {}
        self._main_ident = threading.main_thread().ident
        #: pid → {"label", "prefix", "spans"} for registries merged in
        #: from other processes (:meth:`merge_remote`).
        self._remote: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------- metrics

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` (saturating at int64 bounds, never wrapping)."""
        with self._lock:
            self._counters[name] = _saturate(
                self._counters.get(name, 0) + int(value)
            )

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins float value."""
        with self._lock:
            self._gauges[name] = float(value)

    def histogram(self, name: str, value: float) -> None:
        """Observe ``value`` in the fixed-bucket histogram ``name``
        (bucket edges come from the schema catalogue)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(default_edges_for(name))
                self._histograms[name] = hist
            hist.observe(value)

    # --------------------------------------------------------------- spans

    def span(self, name: str, cat: str = "span", **args) -> Span:
        """Context-manager timer; spans nest (per-thread depth)."""
        return Span(self, name, cat, args)

    def span_at(self, name: str, start_s: float, end_s: float,
                cat: str = "span", tid: Optional[int] = None, **args) -> None:
        """Record an already-measured interval (``perf_counter`` seconds).

        ``tid`` is the OS thread ident the work ran on (defaults to the
        calling thread) — the stream executor uses it to place sort-stage
        spans on their worker thread's track even though the record is
        written from the consuming thread.
        """
        self._add_span(name, cat, start_s, end_s, tid, 0, args)

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = []
            self._locals.stack = stack
        return stack

    def _track(self, ident: Optional[int]) -> int:
        """Small stable per-thread track id (0 = the main thread)."""
        if ident is None:
            ident = threading.get_ident()
        if ident == self._main_ident:
            return 0
        track = self._tracks.get(ident)
        if track is None:
            track = len(self._tracks) + 1
            self._tracks[ident] = track
        return track

    def _add_span(self, name: str, cat: str, start_s: float, end_s: float,
                  tid: Optional[int], depth: int,
                  args: Dict[str, Any]) -> None:
        with self._lock:
            if not self.record_spans:
                # Deliberate opt-out (record_spans=False): counted on the
                # attribute but not surfaced as metric loss.
                self.dropped_spans += 1
                return
            if len(self._spans) >= self.max_spans:
                # Capacity overflow is *loss* — make it snapshot-visible.
                self.dropped_spans += 1
                self._counters["obs.dropped_spans"] = _saturate(
                    self._counters.get("obs.dropped_spans", 0) + 1
                )
                return
            self._spans.append(
                (name, cat, start_s, end_s, self._track(tid), depth, args)
            )

    # -------------------------------------------------------------- export

    def spans(self) -> List[SpanRecord]:
        """Copy of the recorded spans (consistent under the lock)."""
        with self._lock:
            return list(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        """Schema-versioned JSON-ready dict of everything recorded.

        Spans are summarized (per-name counts); the full timeline exports
        separately via :func:`repro.obs.export.chrome_trace`.
        """
        with self._lock:
            span_names: Dict[str, int] = {}
            for rec in self._spans:
                span_names[rec[0]] = span_names.get(rec[0], 0) + 1
            remote_count = 0
            for entry in self._remote.values():
                prefix = entry["prefix"]
                remote_count += len(entry["spans"])
                for rec in entry["spans"]:
                    key = prefix + rec[0]
                    span_names[key] = span_names.get(key, 0) + 1
            spans_block: Dict[str, Any] = {
                "count": len(self._spans) + remote_count,
                "dropped": self.dropped_spans,
                "names": dict(sorted(span_names.items())),
            }
            if self._remote:
                spans_block["processes"] = {
                    str(pid): {"label": entry["label"],
                               "spans": len(entry["spans"])}
                    for pid, entry in sorted(self._remote.items())
                }
            return {
                "schema_version": SCHEMA_VERSION,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "spans": spans_block,
            }

    # ----------------------------------------------------- cross-process

    def export_remote(self, label: str = "",
                      clear: bool = True) -> Dict[str, Any]:
        """Package everything recorded for shipping to another process.

        The payload is plain JSON/pickle-safe data: counters, gauges,
        histogram dicts, span records (absolute ``perf_counter`` times —
        ``CLOCK_MONOTONIC`` is system-wide on Linux, so a receiver on the
        same host can lay them on its own timeline), the drop count, and
        this process's pid.  With ``clear=True`` (the default) the
        registry is reset atomically under the same lock, so a worker
        exporting per-request never double-ships a span.
        """
        with self._lock:
            payload = {
                "pid": os.getpid(),
                "label": label,
                "t0_s": self.t0_s,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self._histograms.items()
                },
                "spans": [
                    [rec[0], rec[1], rec[2], rec[3], rec[4], rec[5],
                     dict(rec[6])]
                    for rec in self._spans
                ],
                "dropped_spans": self.dropped_spans,
            }
            if clear:
                # Inline reset: the lock is not reentrant, so clear()
                # cannot be called from here.
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                self._spans.clear()
                self.dropped_spans = 0
        return payload

    def merge_remote(self, payload: Dict[str, Any],
                     prefix: str = "") -> int:
        """Fold an :meth:`export_remote` payload into this registry.

        Counters, gauges and histograms land under ``prefix`` (e.g.
        ``shard[0].engine.batches``) — :func:`repro.obs.schema.lookup`
        strips the namespace, so they validate against the same
        catalogue rows as local metrics.  Spans are kept per-pid for the
        Chrome exporter to render as separate process lanes; they do not
        count against this registry's ``max_spans`` (the sender already
        bounded them).  Returns the number of spans merged.
        """
        pid = int(payload["pid"])
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                key = prefix + name
                self._counters[key] = _saturate(
                    self._counters.get(key, 0) + int(value)
                )
            for name, value in payload.get("gauges", {}).items():
                self._gauges[prefix + name] = float(value)
            for name, hdict in payload.get("histograms", {}).items():
                key = prefix + name
                hist = self._histograms.get(key)
                if hist is None:
                    hist = Histogram(hdict["edges"])
                    self._histograms[key] = hist
                hist.merge_dict(hdict)
            dropped = int(payload.get("dropped_spans", 0))
            if dropped:
                self.dropped_spans += dropped
                self._counters["obs.dropped_spans"] = _saturate(
                    self._counters.get("obs.dropped_spans", 0) + dropped
                )
            spans = [
                (rec[0], rec[1], float(rec[2]), float(rec[3]), int(rec[4]),
                 int(rec[5]), dict(rec[6]))
                for rec in payload.get("spans", [])
            ]
            entry = self._remote.get(pid)
            if entry is None:
                entry = {"label": payload.get("label", ""),
                         "prefix": prefix, "spans": []}
                self._remote[pid] = entry
            else:
                if payload.get("label"):
                    entry["label"] = payload["label"]
                if prefix:
                    entry["prefix"] = prefix
            entry["spans"].extend(spans)
            if spans:
                self._counters["trace.spans_merged"] = _saturate(
                    self._counters.get("trace.spans_merged", 0) + len(spans)
                )
        return len(spans)

    def remote_processes(self) -> Dict[int, Dict[str, Any]]:
        """Copy of the merged remote registries, keyed by pid
        (``{"label", "prefix", "spans"}`` — consumed by the Chrome
        exporter's per-process lanes)."""
        with self._lock:
            return {
                pid: {"label": entry["label"], "prefix": entry["prefix"],
                      "spans": list(entry["spans"])}
                for pid, entry in self._remote.items()
            }

    # ------------------------------------------------------------- helpers

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._remote.clear()
            self.dropped_spans = 0
            self.t0_s = _clock()


@dataclass(frozen=True)
class TraceConfig:
    """Per-call recording knob carried on
    :class:`~repro.core.config.SearchConfig`.

    * ``enabled=False`` — force the null recorder for the call, even
      inside an ambient ``obs.recording()`` block (opt a hot call out);
    * ``registry=<MetricsRegistry>`` — route the call's metrics into a
      private registry instead of the ambient one, so benchmarks and
      experiments capture per-run metrics without any global leaking
      between runs;
    * default (``enabled=True, registry=None``) — record into whatever
      is ambient (the null recorder when no recording is active).
    """

    enabled: bool = True
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.registry is not None and not isinstance(
            self.registry, MetricsRegistry
        ):
            raise ConfigError(
                "TraceConfig.registry must be a MetricsRegistry, got "
                f"{type(self.registry).__name__}"
            )


__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "Histogram",
    "bucket_quantile",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "SpanRecord",
    "TraceConfig",
]
