"""Metrics registry: counters, gauges, fixed-bucket histograms, spans.

The recording model is two-state by design:

* **off** (the default) — the module-level :data:`NULL_RECORDER` is
  active.  Instrumented hot paths read ``obs.active`` (one module
  attribute lookup), test ``rec.enabled`` (False) and skip everything
  else, so shipping instrumentation costs nothing measurable;
* **on** — ``with obs.recording() as rec:`` swaps a
  :class:`MetricsRegistry` in.  Every mutation takes the registry lock,
  so concurrent ``search_stream`` calls (and the stream executor's sort
  worker threads) record into one registry safely.

Instrumentation sites record at *stats boundaries* — after a batch
execution, per pipeline stage — never inside per-element loops, so the
enabled path stays cheap too (a handful of locked dict updates per
batch).

Counters saturate at int64 bounds instead of overflowing (snapshots stay
valid JSON for consumers that parse into fixed-width integers).
Histograms are fixed-bucket (edges from the :mod:`~repro.obs.schema>`
catalogue): bucket ``0`` is ``(-inf, edges[0])``, bucket ``i`` is
``[edges[i-1], edges[i])``, and the last bucket is ``[edges[-1], inf)``.
Spans are nestable wall-clock timers (per-thread depth tracking) that
export to Chrome ``trace_event`` timelines via
:func:`repro.obs.export.chrome_trace`; bounded by ``max_spans`` so a
long stream cannot grow memory without limit (drops are counted, never
silent).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.schema import SCHEMA_VERSION, default_edges_for

INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)

_clock = time.perf_counter


class NullSpan:
    """Reusable no-op context manager (the disabled ``span()``)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullRecorder:
    """The disabled recorder: every method is a no-op.

    A singleton (:data:`NULL_RECORDER`) sits in ``obs.active`` whenever no
    recording is in progress; instrumented code may either call methods
    blindly (no-ops) or hoist ``if rec.enabled:`` around a block of
    recordings — both are correct, the guard is just cheaper.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, cat: str = "span", **args) -> NullSpan:
        return _NULL_SPAN

    def span_at(self, name: str, start_s: float, end_s: float,
                cat: str = "span", tid: Optional[int] = None, **args) -> None:
        pass

    def snapshot(self) -> None:
        return None


NULL_RECORDER = NullRecorder()


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``edges`` must be strictly increasing; values land in
    ``len(edges) + 1`` buckets with left-closed intervals (a value equal
    to an edge belongs to the bucket *starting* at that edge).
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ConfigError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_right(self.edges, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Span:
    """Nestable wall-clock timer; records a completed span on exit."""

    __slots__ = ("_registry", "name", "cat", "args", "start_s", "end_s",
                 "depth")

    def __init__(self, registry: "MetricsRegistry", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._registry = registry
        self.name = name
        self.cat = cat
        self.args = args
        self.start_s = 0.0
        self.end_s = 0.0
        self.depth = 0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        self.depth = len(stack)
        stack.append(self)
        self.start_s = _clock()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_s = _clock()
        stack = self._registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._registry._add_span(
            self.name, self.cat, self.start_s, self.end_s, None, self.depth,
            self.args,
        )
        return False


#: One completed span: (name, cat, start_s, end_s, track, depth, args).
SpanRecord = Tuple[str, str, float, float, int, int, Dict[str, Any]]


class MetricsRegistry:
    """Thread-safe sink for the instrumentation in the hot paths.

    All mutation methods take the registry lock; reads for export
    (:meth:`snapshot`, the exporters in :mod:`repro.obs.export`) do too,
    so snapshots taken while a stream is running are consistent.

    ``record_spans=False`` keeps counters/gauges/histograms but drops
    span capture — for long recordings where only the aggregates matter.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000,
                 record_spans: bool = True) -> None:
        if max_spans < 0:
            raise ConfigError(f"max_spans must be >= 0, got {max_spans}")
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[SpanRecord] = []
        self.max_spans = int(max_spans)
        self.record_spans = bool(record_spans)
        self.dropped_spans = 0
        #: perf_counter origin — span timestamps export relative to this.
        self.t0_s = _clock()
        self._locals = threading.local()
        self._tracks: Dict[int, int] = {}
        self._main_ident = threading.main_thread().ident

    # ------------------------------------------------------------- metrics

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` (saturating at int64 bounds, never wrapping)."""
        with self._lock:
            cur = self._counters.get(name, 0) + int(value)
            if cur > INT64_MAX:
                cur = INT64_MAX
            elif cur < INT64_MIN:
                cur = INT64_MIN
            self._counters[name] = cur

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins float value."""
        with self._lock:
            self._gauges[name] = float(value)

    def histogram(self, name: str, value: float) -> None:
        """Observe ``value`` in the fixed-bucket histogram ``name``
        (bucket edges come from the schema catalogue)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(default_edges_for(name))
                self._histograms[name] = hist
            hist.observe(value)

    # --------------------------------------------------------------- spans

    def span(self, name: str, cat: str = "span", **args) -> Span:
        """Context-manager timer; spans nest (per-thread depth)."""
        return Span(self, name, cat, args)

    def span_at(self, name: str, start_s: float, end_s: float,
                cat: str = "span", tid: Optional[int] = None, **args) -> None:
        """Record an already-measured interval (``perf_counter`` seconds).

        ``tid`` is the OS thread ident the work ran on (defaults to the
        calling thread) — the stream executor uses it to place sort-stage
        spans on their worker thread's track even though the record is
        written from the consuming thread.
        """
        self._add_span(name, cat, start_s, end_s, tid, 0, args)

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = []
            self._locals.stack = stack
        return stack

    def _track(self, ident: Optional[int]) -> int:
        """Small stable per-thread track id (0 = the main thread)."""
        if ident is None:
            ident = threading.get_ident()
        if ident == self._main_ident:
            return 0
        track = self._tracks.get(ident)
        if track is None:
            track = len(self._tracks) + 1
            self._tracks[ident] = track
        return track

    def _add_span(self, name: str, cat: str, start_s: float, end_s: float,
                  tid: Optional[int], depth: int,
                  args: Dict[str, Any]) -> None:
        with self._lock:
            if not self.record_spans or len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self._spans.append(
                (name, cat, start_s, end_s, self._track(tid), depth, args)
            )

    # -------------------------------------------------------------- export

    def spans(self) -> List[SpanRecord]:
        """Copy of the recorded spans (consistent under the lock)."""
        with self._lock:
            return list(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        """Schema-versioned JSON-ready dict of everything recorded.

        Spans are summarized (per-name counts); the full timeline exports
        separately via :func:`repro.obs.export.chrome_trace`.
        """
        with self._lock:
            span_names: Dict[str, int] = {}
            for rec in self._spans:
                span_names[rec[0]] = span_names.get(rec[0], 0) + 1
            return {
                "schema_version": SCHEMA_VERSION,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "spans": {
                    "count": len(self._spans),
                    "dropped": self.dropped_spans,
                    "names": dict(sorted(span_names.items())),
                },
            }

    # ------------------------------------------------------------- helpers

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self.dropped_spans = 0
            self.t0_s = _clock()


@dataclass(frozen=True)
class TraceConfig:
    """Per-call recording knob carried on
    :class:`~repro.core.config.SearchConfig`.

    * ``enabled=False`` — force the null recorder for the call, even
      inside an ambient ``obs.recording()`` block (opt a hot call out);
    * ``registry=<MetricsRegistry>`` — route the call's metrics into a
      private registry instead of the ambient one, so benchmarks and
      experiments capture per-run metrics without any global leaking
      between runs;
    * default (``enabled=True, registry=None``) — record into whatever
      is ambient (the null recorder when no recording is active).
    """

    enabled: bool = True
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.registry is not None and not isinstance(
            self.registry, MetricsRegistry
        ):
            raise ConfigError(
                "TraceConfig.registry must be a MetricsRegistry, got "
                f"{type(self.registry).__name__}"
            )


__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "SpanRecord",
    "TraceConfig",
]
