"""Observability layer: zero-overhead-when-disabled metrics & tracing.

Usage from instrumented code (the hot-path pattern)::

    import repro.obs as obs

    def execute(self, ...):
        rec = obs.active            # one attribute lookup
        ...
        if rec.enabled:             # False outside a recording
            rec.counter("engine.batches")

Usage from callers::

    with obs.recording() as rec:
        tree.search_stream(batches)
    snapshot = rec.snapshot()

``obs.active`` is the ambient recorder: the :data:`NULL_RECORDER`
singleton by default, a :class:`MetricsRegistry` inside a
``recording()`` block.  Activation is a global swap (recordings nest;
the previous recorder is restored on exit, even on exception), so two
*concurrent* activations of different registries race — but that is not
the concurrency the layer targets: many threads recording into one
active registry is fully supported (every registry mutation is locked),
which is what concurrent ``search_stream`` calls and the stream
executor's sort workers do.  For strict per-call isolation without any
global, pass ``SearchConfig(trace=TraceConfig(registry=...))`` — the
tree entry points scope the swap to the call via :func:`scoped`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.registry import (
    NULL_RECORDER,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Span,
    TraceConfig,
    bucket_quantile,
)
from repro.obs.schema import (
    CATALOGUE,
    SCHEMA_VERSION,
    MetricSpec,
    lookup,
    strip_namespace,
    validate_snapshot,
)

#: The ambient recorder read by every instrumentation site.
active: Union[NullRecorder, MetricsRegistry] = NULL_RECORDER


@contextmanager
def recording(
    registry: Optional[MetricsRegistry] = None, **registry_kwargs
) -> Iterator[MetricsRegistry]:
    """Activate a registry for the duration of the block.

    Yields the registry (a fresh one unless ``registry`` is passed; extra
    kwargs go to the :class:`MetricsRegistry` constructor).  Nestable —
    an inner ``recording()`` shadows the outer one and restores it on
    exit.  The swap is process-global: code that starts threads inside
    the block (e.g. the stream executor) records into this registry from
    all of them.
    """
    global active
    if registry is None:
        registry = MetricsRegistry(**registry_kwargs)
    elif registry_kwargs:
        raise TypeError("pass either a registry or constructor kwargs, "
                        "not both")
    previous = active
    active = registry
    try:
        yield registry
    finally:
        active = previous


@contextmanager
def scoped(trace: Optional[TraceConfig]) -> Iterator[None]:
    """Apply a :class:`TraceConfig` for the duration of one call.

    * ``None`` — leave the ambient recorder untouched (the common case;
      zero work besides this check);
    * ``enabled=False`` — force the null recorder, opting the call out of
      any ambient recording;
    * ``registry`` set — route the call into that private registry.
    """
    if trace is None:
        yield
        return
    global active
    previous = active
    if not trace.enabled:
        active = NULL_RECORDER
    elif trace.registry is not None:
        active = trace.registry
    try:
        yield
    finally:
        active = previous


# Imported after ``active`` exists: both modules read it at call time.
from repro.obs.flight import FLIGHT, FlightRecorder  # noqa: E402
from repro.obs.trace import TraceContext  # noqa: E402

__all__ = [
    "active",
    "recording",
    "scoped",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "TraceConfig",
    "TraceContext",
    "FLIGHT",
    "FlightRecorder",
    "MetricSpec",
    "CATALOGUE",
    "SCHEMA_VERSION",
    "bucket_quantile",
    "lookup",
    "strip_namespace",
    "validate_snapshot",
]
