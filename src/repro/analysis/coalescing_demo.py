"""The paper's Figures 5-7 worked example, made executable.

§4.1 illustrates PSA with four queries — targets 2, 20, 35, 1 — on a small
B+tree: issued as-is, adjacent warp-mates share no lines below the root
(Figure 6a); fully sorted (1, 2, 20, 35) the first pair shares its whole
path (6b); and a *partial* sort that merely groups (2, 1, 20, 35) achieves
the same coalescing without ordering inside the group (6c).

:func:`coalescing_demo` reproduces that narrative on any layout: for each
ordering it reports, per level, how many cache lines each warp's loads
span, so the 6a > 6b == 6c relationship is checkable rather than
illustrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.core.psa import prepare_batch
from repro.gpusim.kernels import SimConfig, simulate_search
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array

#: The paper's example targets (Figure 5).
PAPER_EXAMPLE_TARGETS = (2, 20, 35, 1)


@dataclass(frozen=True)
class OrderingResult:
    name: str
    issue_order: List[int]
    transactions_per_level: List[int]

    @property
    def total_transactions(self) -> int:
        return sum(self.transactions_per_level)


def _measure(layout: HarmoniaLayout, queries: np.ndarray,
             group_size: int) -> List[int]:
    cfg = SimConfig(
        structure="harmonia",
        group_size=group_size,
        early_exit=False,
        model_locality=False,
    )
    metrics: KernelMetrics = simulate_search(layout, queries, cfg)
    return [int(t) for t in metrics.key_transactions]


def coalescing_demo(
    layout: HarmoniaLayout,
    targets: Sequence[int] = PAPER_EXAMPLE_TARGETS,
    group_size: int = 8,
) -> Dict[str, OrderingResult]:
    """Run the Figure 6 comparison on ``layout``.

    ``group_size`` controls how many queries share a warp
    (``warp_size / group_size``); the paper's example pairs adjacent
    queries.  Returns per-ordering results keyed ``original`` /
    ``sorted`` / ``partially_sorted``.
    """
    q = ensure_key_array(np.asarray(targets), "targets")
    space_bits = layout.key_space_bits()

    orderings: Dict[str, np.ndarray] = {"original": q}
    orderings["sorted"] = np.sort(q)
    # Partial sort: group by the top half of the effective key bits —
    # coarse enough that e.g. 1 and 2 stay in arrival order (Figure 6c).
    psa = prepare_batch(q, bits=max(space_bits // 2, 1), key_bits=space_bits)
    orderings["partially_sorted"] = psa.queries

    out: Dict[str, OrderingResult] = {}
    for name, batch in orderings.items():
        out[name] = OrderingResult(
            name=name,
            issue_order=[int(x) for x in batch],
            transactions_per_level=_measure(layout, batch, group_size),
        )
    return out


def demo_tree(fanout: int = 8) -> HarmoniaLayout:
    """A small tree shaped like Figure 5's: the example's targets land in
    distinct leaves except the (1, 2) pair."""
    keys = np.arange(0, 64, dtype=np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=fanout, fill=1.0)


__all__ = ["PAPER_EXAMPLE_TARGETS", "OrderingResult", "coalescing_demo", "demo_tree"]
