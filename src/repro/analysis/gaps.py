"""§2.2 gap analysis — the measurements behind Figures 2 and 3.

Both figures use the same setup: a height-4, fanout-8 regular B+tree on the
GPU, fanout-wide thread groups (so a 32-thread warp carries 4 queries), and
uniformly random query targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.gpu_regular import (
    best_case_transactions_per_warp,
    simulate_regular_gpu_search,
    worst_case_transactions_per_warp,
)
from repro.core.layout import HarmoniaLayout
from repro.core.search import traverse_batch
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.generators import make_key_set, uniform_queries


def build_gap_tree(
    fanout: int = 8,
    height: int = 4,
    fill: float = 1.0,
    rng: RngLike = None,
) -> HarmoniaLayout:
    """A tree of exactly the requested height at the requested fanout.

    Sized to the capacity of a ``height``-level tree at the given fill
    (Figure 2/3 use fanout 8, height 4 → ≈3.5k keys when full).
    """
    gen = ensure_rng(rng)
    slots = fanout - 1
    per_leaf = max(int(round(fill * slots)), (slots + 1) // 2)
    n_leaves = fanout ** (height - 1)
    n_keys = per_leaf * n_leaves
    keys = make_key_set(n_keys, key_space_bits=40, rng=gen)
    layout = HarmoniaLayout.from_sorted(keys, fanout=fanout, fill=fill)
    if layout.height != height:
        raise AssertionError(
            f"sizing bug: got height {layout.height}, wanted {height}"
        )
    return layout


@dataclass(frozen=True)
class MemoryGapResult:
    """Figure 2's three bars."""

    worst: float
    measured: float
    best: float
    per_level: np.ndarray  # measured per-warp key transactions per level

    def rows(self) -> list:
        return [
            {"case": "worst", "avg_mem_transactions_per_warp": round(self.worst, 3)},
            {"case": "queries", "avg_mem_transactions_per_warp": round(self.measured, 3)},
            {"case": "best", "avg_mem_transactions_per_warp": round(self.best, 3)},
        ]


def memory_transaction_gap(
    n_queries: int = 100_000,
    fanout: int = 8,
    height: int = 4,
    device: DeviceSpec = TITAN_V,
    rng: RngLike = None,
) -> MemoryGapResult:
    """Reproduce Figure 2: average memory transactions per warp for random
    concurrent queries vs the analytic worst and best cases."""
    gen = ensure_rng(rng)
    layout = build_gap_tree(fanout=fanout, height=height, rng=gen)
    queries = uniform_queries(layout.all_keys(), n_queries, rng=gen)
    metrics = simulate_regular_gpu_search(layout, queries, device=device)
    qpw = device.warp_size // min(fanout, device.warp_size)
    return MemoryGapResult(
        worst=worst_case_transactions_per_warp(layout, qpw),
        measured=metrics.avg_transactions_per_warp(),
        best=best_case_transactions_per_warp(layout),
        per_level=metrics.transactions_per_warp_level(),
    )


@dataclass(frozen=True)
class QueryDivergenceResult:
    """Figure 3: per-level comparison spread over a query sample."""

    levels: np.ndarray  # 1-based level numbers
    min_comparisons: np.ndarray
    avg_comparisons: np.ndarray
    max_comparisons: np.ndarray

    def rows(self) -> list:
        return [
            {
                "tree_level": int(l),
                "min": int(lo),
                "avg": round(float(av), 2),
                "max": int(hi),
            }
            for l, lo, av, hi in zip(
                self.levels, self.min_comparisons, self.avg_comparisons,
                self.max_comparisons,
            )
        ]


def query_divergence_gap(
    n_queries: int = 100,
    fanout: int = 8,
    height: int = 4,
    rng: RngLike = None,
    layout: Optional[HarmoniaLayout] = None,
) -> QueryDivergenceResult:
    """Reproduce Figure 3: min/avg/max sequential comparisons per level for
    ``n_queries`` random queries (the paper uses 100)."""
    gen = ensure_rng(rng)
    if layout is None:
        layout = build_gap_tree(fanout=fanout, height=height, rng=gen)
    queries = uniform_queries(layout.all_keys(), n_queries, rng=gen)
    trace = traverse_batch(layout, queries)
    cmp = trace.comparisons
    return QueryDivergenceResult(
        levels=np.arange(1, layout.height + 1),
        min_comparisons=cmp.min(axis=1),
        avg_comparisons=cmp.mean(axis=1),
        max_comparisons=cmp.max(axis=1),
    )


__all__ = [
    "build_gap_tree",
    "MemoryGapResult",
    "memory_transaction_gap",
    "QueryDivergenceResult",
    "query_divergence_gap",
]
