"""Analysis experiments behind the paper's motivation and model sections."""

from repro.analysis.gaps import (
    memory_transaction_gap,
    query_divergence_gap,
)
from repro.analysis.node_usage import (
    build_random_insertion_tree,
    node_quarter_distribution,
)
from repro.analysis.model_check import validate_ntg_model

__all__ = [
    "memory_transaction_gap",
    "query_divergence_gap",
    "build_random_insertion_tree",
    "node_quarter_distribution",
    "validate_ntg_model",
]
