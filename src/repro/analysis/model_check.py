"""§4.2 NTG model validation.

The paper checks its Equation-4 narrowing model by comparing the group size
it picks against the empirically best one for fanouts 8–128 on two GPUs
("the NTG size of this model is basically consistent with the NTG size of
the best performance").  We do the same: the model's static-profiling
choice vs an exhaustive sweep of simulated throughput over all legal group
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.core.layout import HarmoniaLayout
from repro.core.ntg import choose_group_size, fanout_group_size
from repro.core.psa import prepare_batch
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import simulate_harmonia_search
from repro.gpusim.perfmodel import modeled_throughput
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.generators import make_key_set, uniform_queries


@dataclass(frozen=True)
class NTGValidation:
    """Model choice vs empirical best for one (fanout, device) point."""

    fanout: int
    device: str
    model_gs: int
    best_gs: int
    #: modeled queries/s per candidate group size
    throughput_by_gs: Dict[int, float]

    @property
    def consistent(self) -> bool:
        """The paper's criterion, read as "within one halving": the model's
        pick performs within 10% of the empirical best."""
        best = self.throughput_by_gs[self.best_gs]
        mine = self.throughput_by_gs[self.model_gs]
        return mine >= 0.9 * best

    def row(self) -> dict:
        return {
            "fanout": self.fanout,
            "device": self.device,
            "model_gs": self.model_gs,
            "best_gs": self.best_gs,
            "model_within_10pct": self.consistent,
        }


def validate_ntg_model(
    fanout: int,
    n_keys: int = 1 << 16,
    n_queries: int = 1 << 14,
    device: DeviceSpec = TITAN_V,
    fill: float = 0.7,
    rng: RngLike = None,
) -> NTGValidation:
    """Run the model and the exhaustive sweep for one fanout."""
    gen = ensure_rng(rng)
    keys = make_key_set(n_keys, rng=gen)
    layout = HarmoniaLayout.from_sorted(keys, fanout=fanout, fill=fill)
    raw = uniform_queries(keys, n_queries, rng=gen)
    psa = prepare_batch(
        raw, tree_size=n_keys, keys_per_cacheline=device.keys_per_cacheline,
        key_bits=layout.key_space_bits(),
    )
    queries = psa.queries

    selection = choose_group_size(
        layout, queries[:1000], warp_size=device.warp_size
    )

    max_gs = fanout_group_size(fanout, device.warp_size)
    tp: Dict[int, float] = {}
    gs = max_gs
    while gs >= 1:
        # The fanout-wide width runs traditional full-scan semantics; any
        # narrowed width runs NTG's early-exit sweep (§4.2).
        metrics = simulate_harmonia_search(
            layout, queries, gs, device=device, early_exit=(gs < max_gs)
        )
        tp[gs] = modeled_throughput(metrics, layout, device=device)
        gs //= 2
    best_gs = max(tp, key=lambda g: tp[g])
    return NTGValidation(
        fanout=fanout,
        device=device.name,
        model_gs=selection.group_size,
        best_gs=best_gs,
        throughput_by_gs=tp,
    )


def ntg_model_sweep(
    fanouts: Sequence[int] = (8, 16, 32, 64, 128),
    devices: Optional[Sequence[DeviceSpec]] = None,
    rng: RngLike = None,
    **kwargs,
) -> List[NTGValidation]:
    """The paper's validation grid: fanouts × devices."""
    from repro.gpusim.device import TESLA_K80

    gen = ensure_rng(rng)
    if devices is None:
        devices = (TITAN_V, TESLA_K80)
    out: List[NTGValidation] = []
    for device in devices:
        for fanout in fanouts:
            out.append(validate_ntg_model(fanout, device=device, rng=gen, **kwargs))
    return out


__all__ = ["NTGValidation", "validate_ntg_model", "ntg_model_sweep"]
