"""Figure 10 — which part of a node do queries actually search?

The paper divides each node's key region into four equal parts and counts
the proportion of per-level searches whose target child falls in each part:
about 80% resolve within the front half, for every fanout from 8 to 128 —
the justification for narrowing thread groups (§4.2).

The effect relies on realistic node occupancy ("it is a high probability
that a B+tree node is half full"), so the trees here are built by *random
insertion* — which converges to ~69% (ln 2) mean occupancy with a wide
spread — rather than by a fixed-fill bulk load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.btree.regular import RegularBPlusTree
from repro.core.layout import HarmoniaLayout
from repro.core.search import traverse_batch
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import ensure_positive
from repro.workloads.generators import make_key_set, uniform_queries


def build_random_insertion_tree(
    n_keys: int,
    fanout: int,
    rng: RngLike = None,
) -> HarmoniaLayout:
    """A tree with insertion-order node occupancy (≈ln2 mean fill)."""
    n_keys = ensure_positive("n_keys", n_keys)
    gen = ensure_rng(rng)
    keys = make_key_set(n_keys, key_space_bits=40, rng=gen)
    order = gen.permutation(n_keys)
    tree = RegularBPlusTree(fanout)
    for k in keys[order]:
        tree.insert(int(k), int(k))
    return HarmoniaLayout.from_regular(tree)


@dataclass(frozen=True)
class QuarterDistribution:
    """Per-fanout proportions of searches landing in each node quarter."""

    fanout: int
    #: fraction of per-level searches whose target child slot lies in the
    #: 1st/2nd/3rd/4th quarter of the node's key slots.
    quarters: np.ndarray  # (4,)

    @property
    def front_half(self) -> float:
        return float(self.quarters[:2].sum())

    def row(self) -> dict:
        q = self.quarters
        return {
            "fanout": self.fanout,
            "q1": round(float(q[0]), 4),
            "q2": round(float(q[1]), 4),
            "q3": round(float(q[2]), 4),
            "q4": round(float(q[3]), 4),
            "front_half": round(self.front_half, 4),
        }


def node_quarter_distribution(
    layout: HarmoniaLayout,
    n_queries: int = 10_000,
    rng: RngLike = None,
) -> QuarterDistribution:
    """Measure the Figure 10 distribution on one tree.

    Every (query, level) visit contributes one sample: the quarter of the
    node's key region (``fanout - 1`` slots split evenly in four) containing
    the last key the sequential scan inspects.
    """
    gen = ensure_rng(rng)
    queries = uniform_queries(layout.all_keys(), n_queries, rng=gen)
    trace = traverse_batch(layout, queries)
    # Position of the last inspected key, as a fraction of the key region.
    cmp = trace.comparisons.ravel().astype(np.float64)
    frac = (cmp - 1.0) / layout.slots
    quarter = np.minimum((frac * 4).astype(np.int64), 3)
    counts = np.bincount(quarter, minlength=4).astype(np.float64)
    return QuarterDistribution(
        fanout=layout.fanout, quarters=counts / counts.sum()
    )


def quarter_sweep(
    fanouts: Sequence[int] = (8, 16, 32, 64, 128),
    keys_per_tree: int = 20_000,
    n_queries: int = 10_000,
    rng: RngLike = None,
) -> List[QuarterDistribution]:
    """Figure 10's sweep over tree fanouts."""
    gen = ensure_rng(rng)
    out: List[QuarterDistribution] = []
    for fanout in fanouts:
        layout = build_random_insertion_tree(keys_per_tree, fanout, rng=gen)
        out.append(node_quarter_distribution(layout, n_queries, rng=gen))
    return out


__all__ = [
    "build_random_insertion_tree",
    "QuarterDistribution",
    "node_quarter_distribution",
    "quarter_sweep",
]
