"""Calibration-sensitivity analysis of the performance model.

The time model has one tuned constant (``cycles_per_step``, see
docs/model.md).  This module quantifies how much each *reported ratio* —
the quantities the reproduction's conclusions rest on — moves as that
constant sweeps a plausible range, backing the claim that the shapes are
calibration-robust.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from repro.baselines.hbtree import HBTree
from repro.core import HarmoniaTree, SearchConfig
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.generators import make_key_set, uniform_queries


@dataclass(frozen=True)
class SensitivityPoint:
    cycles_per_step: float
    harmonia_gqs: float
    hb_gqs: float

    @property
    def speedup(self) -> float:
        return self.harmonia_gqs / self.hb_gqs if self.hb_gqs else 0.0


@dataclass(frozen=True)
class SensitivityReport:
    points: List[SensitivityPoint]

    @property
    def speedups(self) -> np.ndarray:
        return np.array([p.speedup for p in self.points])

    @property
    def max_ratio_swing(self) -> float:
        """Largest relative deviation of the speedup from its median over
        the sweep — the number model.md cites."""
        s = self.speedups
        med = float(np.median(s))
        if med == 0:
            return float("inf")
        return float(np.max(np.abs(s - med)) / med)

    def rows(self) -> List[dict]:
        return [
            {
                "cycles_per_step": p.cycles_per_step,
                "harmonia_gqs": round(p.harmonia_gqs, 3),
                "hb_gqs": round(p.hb_gqs, 3),
                "speedup": round(p.speedup, 2),
            }
            for p in self.points
        ]


def sweep_cycles_per_step(
    values: Sequence[float] = (8.0, 12.0, 16.0, 20.0, 24.0),
    n_keys: int = 1 << 15,
    n_queries: int = 1 << 13,
    base_device: DeviceSpec = None,
    rng: RngLike = None,
) -> SensitivityReport:
    """Sweep the calibrated constant; everything else held fixed.

    The kernel *counters* are computed once per system — they do not
    depend on the constant — and only the time conversion is repeated.
    The device defaults to a TITAN V miniaturized to the workload (same
    rule as every experiment; see ``workloads.datasets``).
    """
    from repro.workloads.datasets import miniaturized_device

    if base_device is None:
        base_device = miniaturized_device(n_keys, n_queries, TITAN_V)
    gen = ensure_rng(rng)
    keys = make_key_set(n_keys, rng=gen)
    queries = uniform_queries(keys, n_queries, rng=gen)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)

    prep = tree.prepare_queries(queries, SearchConfig.full())
    m_ha = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=base_device
    )
    m_hb = hb.simulate_search(queries, device=base_device)

    points = []
    for cps in values:
        device = replace(base_device, cycles_per_step=float(cps))
        sort_s = estimate_sort_time(n_queries, prep.psa.sort_passes, device)
        tp_ha = modeled_throughput(m_ha, tree.layout, device, sort_s=sort_s)
        tp_hb = modeled_throughput(m_hb, hb._layout, device)
        points.append(
            SensitivityPoint(
                cycles_per_step=float(cps),
                harmonia_gqs=tp_ha / 1e9,
                hb_gqs=tp_hb / 1e9,
            )
        )
    return SensitivityReport(points=points)


__all__ = ["SensitivityPoint", "SensitivityReport", "sweep_cycles_per_step"]
