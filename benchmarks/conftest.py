"""Shared fixtures for the figure benchmarks.

Each ``bench_figNN`` module times the operation behind one paper figure
with ``pytest-benchmark`` and attaches the regenerated figure rows to the
benchmark's ``extra_info`` so a single
``pytest benchmarks/ --benchmark-only`` run both measures the code and
reproduces the evaluation tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hbtree import HBTree
from repro.core import HarmoniaTree, SearchConfig
from repro.workloads.datasets import get_scale, scaled_device
from repro.workloads.generators import make_key_set, uniform_queries

#: Scale used for all benchmarks — "smoke" keeps a full benchmark run in
#: tens of seconds; switch to "default" for the paper-shaped sweep.
BENCH_SCALE = get_scale("smoke")
N_KEYS = 1 << BENCH_SCALE.tree_log2_lo
N_QUERIES = BENCH_SCALE.n_queries


@pytest.fixture(scope="session")
def device():
    return scaled_device(BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_keys():
    return make_key_set(N_KEYS, rng=1234)


@pytest.fixture(scope="session")
def bench_tree(bench_keys):
    return HarmoniaTree.from_sorted(bench_keys, fanout=64, fill=0.7)


@pytest.fixture(scope="session")
def bench_hbtree(bench_keys):
    return HBTree.from_sorted(bench_keys, fanout=64, fill=0.7)


@pytest.fixture(scope="session")
def bench_queries(bench_keys):
    return uniform_queries(bench_keys, N_QUERIES, rng=5678)


@pytest.fixture(scope="session")
def prepared_full(bench_tree, bench_queries):
    return bench_tree.prepare_queries(bench_queries, SearchConfig.full())
