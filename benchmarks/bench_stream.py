"""Stream bench — serial sort-then-traverse vs the overlapped executor.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_stream.py
  --benchmark-only``) timing the legacy serial pipeline and the streaming
  executor's ``serial`` and ``overlap`` modes on the shared bench fixtures;
* a standalone emitter (``python benchmarks/bench_stream.py``) that sweeps
  batch sizes x tree sizes and writes ``BENCH_stream.json`` at the repo
  root.  The acceptance point (2^16-query batches over a 2^20-key tree)
  compares the overlapped executor against the *pre-PR* serial
  sort-then-traverse pipeline — the legacy radix pass (int64 digit arrays,
  whole-digit top pass), an eagerly materialized inverse permutation, and
  a restore gather — i.e. exactly what ``search_many`` cost before this
  change.

Honesty notes baked into the emitted stats: the container this repo grows
in has **one** CPU, so sort/traverse overlap is work-conserving there —
``overlap_vs_serial`` (same executor, same sort) hovers near 1.0 and the
acceptance speedup comes from the real work the executor removes (narrowed
counting passes, slot reuse, direct scatter instead of inverse+gather).
On a multicore host the overlap additionally hides up to
``min(sort, traverse)`` per batch, which is what ``sort_hidden`` and the
``model_double_buffer_s`` column quantify.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core import HarmoniaTree, StreamExecutor
from repro.core.engine import BatchQueryEngine
from repro.core.psa import optimal_sort_bits
from repro.sort.radix import radix_passes
from repro.workloads.generators import make_key_set, uniform_queries

# ----------------------------------------------------- legacy serial baseline


def _legacy_partial_argsort(keys, bits, digit_bits=8, key_bits=64):
    """The pre-PR partial radix argsort, kept verbatim as the baseline:
    digit arrays stay int64 (NumPy's stable argsort then histograms all
    eight bytes per pass) and the pass ladder rounds the top pass up to a
    whole digit."""
    order = np.arange(keys.size, dtype=np.int64)
    if bits == 0 or keys.size <= 1:
        return order
    digit_bits = min(digit_bits, bits)
    mask = (1 << digit_bits) - 1
    n_passes = radix_passes(bits, digit_bits)
    start = key_bits - n_passes * digit_bits
    for p in range(n_passes):
        shift = start + p * digit_bits
        if shift < 0:
            span_mask = (1 << (digit_bits + shift)) - 1
            digits = keys[order] & span_mask
        else:
            digits = (keys[order] >> shift) & mask
        order = order[np.argsort(digits, kind="stable")]
    return order


def legacy_serial_stream(layout, queries, batch_size, engine):
    """The pre-PR cost stack per batch: legacy sort -> gather to issue
    order -> eager inverse permutation -> traverse (fresh output array) ->
    restore gather -> copy into the output slice.  Strictly serial."""
    n = queries.size
    bits = optimal_sort_bits(max(layout.n_keys, 1), 16, layout.key_space_bits())
    out = np.empty(n, dtype=np.int64)
    for s in range(0, n, batch_size):
        e = min(s + batch_size, n)
        order = _legacy_partial_argsort(
            queries[s:e], bits, key_bits=layout.key_space_bits()
        )
        issued = queries[s:e][order]
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size, dtype=np.int64)
        values = engine.execute(issued)
        out[s:e] = values[inverse]
    return out


# --------------------------------------------------------- pytest-benchmark


def test_stream_legacy_serial(benchmark, bench_tree, bench_queries):
    layout = bench_tree.layout
    engine = BatchQueryEngine(layout)
    batch = max(1 << 12, bench_queries.size // 4)
    engine.execute(bench_queries[:batch])  # warm scratch + packed leaves
    out = benchmark(
        legacy_serial_stream, layout, bench_queries, batch, engine
    )
    assert np.array_equal(out, bench_tree.search_batch(bench_queries))


def test_stream_serial(benchmark, bench_tree, bench_queries):
    ex = StreamExecutor(
        bench_tree.layout,
        batch_size=max(1 << 12, bench_queries.size // 4),
        mode="serial",
        depth=1,
    )
    ex.run(bench_queries)
    out = benchmark(ex.run, bench_queries)
    assert np.array_equal(out, bench_tree.search_batch(bench_queries))
    benchmark.extra_info["stats"] = ex.last_stats.summary()


def test_stream_overlap(benchmark, bench_tree, bench_queries):
    ex = StreamExecutor(
        bench_tree.layout,
        batch_size=max(1 << 12, bench_queries.size // 4),
        mode="overlap",
    )
    ex.run(bench_queries)
    out = benchmark(ex.run, bench_queries)
    assert np.array_equal(out, bench_tree.search_batch(bench_queries))
    benchmark.extra_info["stats"] = ex.last_stats.summary()


# ------------------------------------------------------------ JSON emitter


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(tree_log2: int, batch_log2: int, n_batches: int = 4,
            seed: int = 1234) -> dict:
    """One sweep point: the legacy serial pipeline vs the streaming
    executor (serial and overlap modes) on ``n_batches`` batches."""
    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    layout = tree.layout
    batch = 1 << batch_log2
    queries = uniform_queries(keys, n_batches * batch, rng=seed + 1)

    legacy_engine = BatchQueryEngine(layout)
    serial_ex = StreamExecutor(layout, batch_size=batch, mode="serial", depth=1)
    overlap_ex = StreamExecutor(layout, batch_size=batch, mode="overlap")
    overlap_ex.engine.share_packed_leaves(serial_ex.engine)
    legacy_engine.share_packed_leaves(serial_ex.engine)

    ref = legacy_serial_stream(layout, queries, batch, legacy_engine)  # warm
    assert np.array_equal(serial_ex.run(queries), ref)
    assert np.array_equal(overlap_ex.run(queries), ref)

    t_legacy = _best_of(
        lambda: legacy_serial_stream(layout, queries, batch, legacy_engine)
    )
    t_serial = _best_of(lambda: serial_ex.run(queries))
    t_overlap = _best_of(lambda: overlap_ex.run(queries))
    st = overlap_ex.last_stats
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "n_batches": n_batches,
        "bits_sorted": st.bits_sorted,
        "legacy_serial_s": round(t_legacy, 6),
        "stream_serial_s": round(t_serial, 6),
        "stream_overlap_s": round(t_overlap, 6),
        "speedup_overlap_vs_legacy": round(t_legacy / t_overlap, 2),
        "overlap_vs_serial": round(t_serial / t_overlap, 2),
        "steady_sort_ms": round(st.steady_sort_s * 1e3, 3),
        "steady_traverse_ms": round(st.steady_traverse_s * 1e3, 3),
        "steady_scatter_ms": round(st.steady_scatter_s * 1e3, 3),
        "sort_hidden": st.sort_hidden,
        "overlapped_ms": round(st.overlapped_s * 1e3, 3),
        "occupancy": round(st.occupancy, 3),
        "model_serial_s": round(st.model_total_s("serial"), 6),
        "model_double_buffer_s": round(st.model_total_s("double_buffer"), 6),
    }


def _capture_metrics(acceptance: dict, n_batches: int = 4,
                     seed: int = 1234) -> dict:
    """One *recorded* overlapped run of the acceptance point — outside the
    timed loops so the emitted timings stay disabled-path numbers — plus
    the emitter's timing blocks as ``bench.*`` gauges."""
    import repro.obs as obs
    from repro.obs.schema import validate_snapshot

    keys = make_key_set(1 << acceptance["tree_log2"], rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    batch = 1 << acceptance["batch_log2"]
    queries = uniform_queries(keys, n_batches * batch, rng=seed + 1)
    ex = StreamExecutor(tree.layout, batch_size=batch, mode="overlap")
    with obs.recording() as rec:
        ex.run(queries)
        rec.gauge("bench.stream.legacy_serial_s", acceptance["legacy_serial_s"])
        rec.gauge("bench.stream.stream_serial_s", acceptance["stream_serial_s"])
        rec.gauge(
            "bench.stream.stream_overlap_s", acceptance["stream_overlap_s"]
        )
        rec.gauge(
            "bench.stream.speedup_overlap_vs_legacy",
            acceptance["speedup_overlap_vs_legacy"],
        )
        rec.gauge(
            "bench.stream.overlap_vs_serial", acceptance["overlap_vs_serial"]
        )
    ex.close()
    snapshot = rec.snapshot()
    problems = validate_snapshot(snapshot)
    if problems:
        raise AssertionError(f"bench metrics failed validation: {problems}")
    return snapshot


def main(out_path: str = None) -> dict:
    rows = []
    for tree_log2 in (18, 20):
        for batch_log2 in (14, 16):
            rows.append(measure(tree_log2, batch_log2))
    acceptance = next(
        r for r in rows if r["tree_log2"] == 20 and r["batch_log2"] == 16
    )
    record = {
        "bench": "stream",
        "workload": "uniform point lookups streamed in fixed batches, "
        "fanout 64, fill 0.7",
        "cpu_count": os.cpu_count() or 1,
        "acceptance": {
            "criterion": "overlapped executor >= 1.3x the pre-PR serial "
            "sort-then-traverse at 2^16-query batches / 2^20 keys",
            "speedup": acceptance["speedup_overlap_vs_legacy"],
            "ok": acceptance["speedup_overlap_vs_legacy"] >= 1.3,
            "sort_hidden": acceptance["sort_hidden"],
            "overlap_vs_serial_same_sort": acceptance["overlap_vs_serial"],
            "note": "on this 1-CPU container the overlap is work-conserving "
            "(overlap_vs_serial ~ 1.0); the speedup is real work removed — "
            "narrowed counting passes, slot reuse, direct scatter. On a "
            "multicore host overlap additionally hides up to "
            "min(sort, traverse) per batch (model_double_buffer_s).",
        },
        "rows": rows,
        "metrics": _capture_metrics(acceptance),
    }
    path = pathlib.Path(
        out_path or pathlib.Path(__file__).parent.parent / "BENCH_stream.json"
    )
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(record["acceptance"], indent=2))
    return record


if __name__ == "__main__":  # pragma: no cover
    main()
