"""YCSB-style end-to-end benches over the full HarmoniaTree API."""

import pytest

from repro.core import HarmoniaTree
from repro.workloads.generators import make_key_set
from repro.workloads.ycsb import PRESETS, run_ycsb


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_ycsb_preset(benchmark, preset):
    keys = make_key_set(1 << 14, rng=77)

    def round_trip():
        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        return run_ycsb(preset, tree, rounds=1, ops_per_round=2_000, rng=78)

    totals = benchmark.pedantic(round_trip, rounds=2, iterations=1)
    for k in ("reads", "ranges", "ops"):
        benchmark.extra_info[k] = totals[k]
