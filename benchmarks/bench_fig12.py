"""Figure 12 bench — nvprof-style counter ratios, plus the cached-children
ablation (DESIGN.md §5)."""

from repro.gpusim import simulate_harmonia_search


def test_fig12_profile_ratios(benchmark, bench_tree, bench_hbtree,
                              bench_queries, prepared_full, device):
    def profile():
        m_hb = bench_hbtree.simulate_search(bench_queries, device=device)
        m_ha = simulate_harmonia_search(
            bench_tree.layout, prepared_full.queries,
            prepared_full.group_size, device=device,
        )
        return m_hb, m_ha

    m_hb, m_ha = benchmark.pedantic(profile, rounds=1, iterations=1)
    tx = m_ha.gld_transactions / m_hb.gld_transactions
    divg = m_ha.transactions_per_request / m_hb.transactions_per_request
    coh = m_ha.warp_coherence / m_hb.warp_coherence
    benchmark.extra_info["gld_transactions_norm"] = round(tx, 3)
    benchmark.extra_info["memory_divergence_norm"] = round(divg, 3)
    benchmark.extra_info["warp_coherence_norm"] = round(coh, 3)
    assert tx <= 0.45 and divg < 1.0 and coh > 1.0


def test_fig12_ablation_children_cache(benchmark, bench_tree, prepared_full,
                                       device):
    def both():
        cached = simulate_harmonia_search(
            bench_tree.layout, prepared_full.queries,
            prepared_full.group_size, device=device, cached_children=True,
        )
        uncached = simulate_harmonia_search(
            bench_tree.layout, prepared_full.queries,
            prepared_full.group_size, device=device, cached_children=False,
        )
        return cached, uncached

    cached, uncached = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["cached_tx"] = cached.gld_transactions
    benchmark.extra_info["uncached_tx"] = uncached.gld_transactions
    assert uncached.gld_transactions > cached.gld_transactions
