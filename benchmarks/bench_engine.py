"""Engine bench — naive vs frontier-compacted vs compacted+threads.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_engine.py
  --benchmark-only``) timing the three executors on the shared bench
  fixtures;
* a standalone emitter (``python benchmarks/bench_engine.py``) that sweeps
  batch sizes x tree sizes and writes ``BENCH_engine.json`` at the repo
  root — the repository's perf-trajectory record.  The acceptance point
  (2^16 PSA-sorted queries over a 2^20-key tree) is tagged ``acceptance``.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core import HarmoniaTree, SearchConfig
from repro.core.engine import BatchQueryEngine
from repro.core.psa import prepare_batch
from repro.core.search import search_batch
from repro.workloads.generators import make_key_set, uniform_queries

# --------------------------------------------------------- pytest-benchmark


def _psa_sorted(tree, queries):
    layout = tree.layout
    psa = prepare_batch(
        queries, tree_size=layout.n_keys, key_bits=layout.key_space_bits()
    )
    return psa.queries


def test_engine_naive(benchmark, bench_tree, bench_queries):
    issued = _psa_sorted(bench_tree, bench_queries)
    out = benchmark(search_batch, bench_tree.layout, issued)
    assert out.size == issued.size


def test_engine_compacted(benchmark, bench_tree, bench_queries):
    issued = _psa_sorted(bench_tree, bench_queries)
    eng = BatchQueryEngine(bench_tree.layout)
    eng.execute(issued)  # warm scratch + packed leaf block
    out = benchmark(eng.execute, issued)
    assert np.array_equal(out, search_batch(bench_tree.layout, issued))
    benchmark.extra_info["unique_nodes_per_level"] = (
        eng.last_stats.unique_nodes_per_level.tolist()
    )
    benchmark.extra_info["compaction_ratio"] = round(
        eng.last_stats.compaction_ratio, 2
    )


def test_engine_compacted_threads(benchmark, bench_tree, bench_queries):
    issued = _psa_sorted(bench_tree, bench_queries)
    eng = BatchQueryEngine(bench_tree.layout, n_workers=4, min_parallel=1 << 12)
    eng.execute(issued)
    out = benchmark(eng.execute, issued)
    assert np.array_equal(out, search_batch(bench_tree.layout, issued))
    benchmark.extra_info["n_chunks"] = eng.last_stats.n_chunks


def test_engine_full_pipeline(benchmark, bench_tree, bench_queries):
    """search_many end to end (PSA + compaction + restore)."""
    cfg = SearchConfig(ntg="fanout")
    bench_tree.search_many(bench_queries, cfg)  # warm engine
    out = benchmark(bench_tree.search_many, bench_queries, cfg)
    assert np.array_equal(out, bench_tree.search_batch(bench_queries, cfg))


# ------------------------------------------------------------ JSON emitter


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(tree_log2: int, batch_log2: int, n_workers: int = 4,
            seed: int = 1234) -> dict:
    """One sweep point: naive vs compacted vs sharded on a PSA-sorted batch."""
    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    layout = tree.layout
    queries = uniform_queries(keys, 1 << batch_log2, rng=seed + 1)
    issued = _psa_sorted(tree, queries)

    solo = BatchQueryEngine(layout)
    sharded = BatchQueryEngine(layout, n_workers=n_workers,
                               min_parallel=1 << 12)
    solo.execute(issued)
    sharded.execute(issued)
    t_naive = _best_of(lambda: search_batch(layout, issued))
    t_comp = _best_of(lambda: solo.execute(issued))
    t_shard = _best_of(lambda: sharded.execute(issued))
    stats = solo.last_stats
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "height": layout.height,
        "naive_s": round(t_naive, 6),
        "compacted_s": round(t_comp, 6),
        "compacted_threads_s": round(t_shard, 6),
        "n_workers": n_workers,
        "speedup_compacted": round(t_naive / t_comp, 2),
        "speedup_threads": round(t_naive / t_shard, 2),
        "unique_nodes_per_level": stats.unique_nodes_per_level.tolist(),
        "compaction_ratio": round(stats.compaction_ratio, 2),
    }


def measure_per_level_ntg(
    tree_log2: int = 20,
    batch_log2: int = 16,
    keep_every: int = 16,
    seed: int = 1234,
) -> dict:
    """Per-level NTG vs the global single-width chooser on a skewed tree.

    The tree is bulk-built full, then thinned to one key in ``keep_every``
    per leaf via gapped deletes (compaction suppressed), so leaf occupancy
    collapses while the internal separator levels stay dense — the
    occupancy skew ``ntg_degree[depth]`` exists for.  Both paths run the
    same PSA-sorted batch through the GPU kernel simulator; the speedup
    metric is simulated *global memory transactions* (Figure 12's
    currency — the throughput proxy for a memory-bound GPU kernel), with
    warp steps alongside to show the narrowing is not paid back in extra
    serialization.
    """
    from dataclasses import replace

    from repro.core.config import UpdateConfig
    from repro.core.update import Operation
    from repro.gpusim import simulate_harmonia_search

    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=1.0)
    thin_cfg = UpdateConfig(
        mode="gapped", gap_watermark=1.0, occupancy_low=0.0
    )
    doomed = keys[np.arange(keys.size) % keep_every != 0]
    tree.apply_batch([Operation("delete", int(k)) for k in doomed], thin_cfg)
    survivors = keys[np.arange(keys.size) % keep_every == 0]
    queries = uniform_queries(survivors, 1 << batch_log2, rng=seed + 1)

    cfg = SearchConfig.full()
    prep_pl = tree.prepare_queries(queries, cfg)
    prep_gl = tree.prepare_queries(queries, replace(cfg, ntg_per_level=False))
    m_global = simulate_harmonia_search(
        tree.layout, prep_gl.queries, prep_gl.group_size
    )
    m_per_level = simulate_harmonia_search(
        tree.layout, prep_pl.queries, prep_pl.group_size,
        ntg_degrees=prep_pl.ntg_degrees,
    )
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "keep_every": keep_every,
        "height": tree.layout.height,
        "global_group_size": prep_gl.group_size,
        "ntg_degrees": list(prep_pl.ntg_degrees),
        "scan_widths": list(prep_pl.scan_widths),
        "gld_transactions_global": m_global.gld_transactions,
        "gld_transactions_per_level": m_per_level.gld_transactions,
        "warp_steps_global": m_global.total_warp_steps,
        "warp_steps_per_level": m_per_level.total_warp_steps,
        "model_speedup": round(
            m_global.gld_transactions / m_per_level.gld_transactions, 3
        ),
        "warp_step_ratio": round(
            m_global.total_warp_steps / m_per_level.total_warp_steps, 3
        ),
    }


def _capture_metrics(acceptance: dict, seed: int = 1234) -> dict:
    """One *recorded* run of the acceptance point, kept outside the timed
    loops above (recording adds per-batch bookkeeping; the timings must
    stay the disabled-path numbers).  The registry also carries the
    emitter's own timing blocks as ``bench.*`` gauges, so ``repro obs
    diff BENCH_engine.json BENCH_engine.old.json`` sees them."""
    import repro.obs as obs
    from repro.obs.schema import validate_snapshot

    tree_log2 = acceptance["tree_log2"]
    batch_log2 = acceptance["batch_log2"]
    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    queries = uniform_queries(keys, 1 << batch_log2, rng=seed + 1)
    issued = _psa_sorted(tree, queries)
    eng = BatchQueryEngine(tree.layout)
    with obs.recording() as rec:
        eng.execute(issued, issue_sorted=True)
        rec.gauge("bench.engine.naive_s", acceptance["naive_s"])
        rec.gauge("bench.engine.compacted_s", acceptance["compacted_s"])
        rec.gauge(
            "bench.engine.compacted_threads_s",
            acceptance["compacted_threads_s"],
        )
        rec.gauge(
            "bench.engine.speedup_compacted", acceptance["speedup_compacted"]
        )
        rec.gauge("bench.engine.speedup_threads", acceptance["speedup_threads"])
    snapshot = rec.snapshot()
    problems = validate_snapshot(snapshot)
    if problems:
        raise AssertionError(f"bench metrics failed validation: {problems}")
    return snapshot


def _overhead_check(acceptance: dict, previous_path: pathlib.Path,
                    limit: float = 1.03, retries: int = 4) -> dict:
    """Gate the always-on observability state against the prior record.

    The flight recorder is live from import and tracing guards sit on
    every request path, so the *default* state (flight-on, tracing-off)
    must not tax the acceptance point: ``compacted_s`` has to stay
    within ``limit`` of the committed ``BENCH_engine.json``'s — in
    absolute seconds, or after normalizing by ``naive_s``.  The naive
    executor carries no obs instrumentation, so it is a same-run proxy
    for host speed: a genuinely slower/faster machine moves both
    numbers and the normalized ratio cancels it, while a tax added only
    to the instrumented engine path moves ``compacted_s`` alone and
    fails both forms.  A breach is re-measured up to ``retries`` times
    (best-of accumulates toward the quiet-machine floor) before it
    raises, so a regression cannot ship silently inside a regenerated
    record.
    """
    criterion = (
        f"default-state compacted_s within {limit:.2f}x of the previous "
        "record, in absolute seconds or normalized by the uninstrumented "
        "naive control"
    )
    try:
        previous = json.loads(previous_path.read_text())
        prev_row = next(
            r for r in previous["rows"]
            if r["tree_log2"] == acceptance["tree_log2"]
            and r["batch_log2"] == acceptance["batch_log2"]
        )
        prev_comp = float(prev_row["compacted_s"])
        prev_naive = float(prev_row["naive_s"])
    except (OSError, json.JSONDecodeError, KeyError, StopIteration):
        return {
            "criterion": criterion,
            "ok": True,
            "note": "no previous record to gate against",
        }
    best_comp = float(acceptance["compacted_s"])
    best_naive = float(acceptance["naive_s"])

    def ok():
        abs_ok = best_comp <= prev_comp * limit
        norm_ok = (best_comp / best_naive) <= \
            (prev_comp / prev_naive) * limit
        return abs_ok or norm_ok

    attempts = 0
    while not ok() and attempts < retries:
        attempts += 1
        remeasured = measure(
            acceptance["tree_log2"], acceptance["batch_log2"]
        )
        best_comp = min(best_comp, float(remeasured["compacted_s"]))
        best_naive = min(best_naive, float(remeasured["naive_s"]))
    check = {
        "criterion": criterion,
        "previous_compacted_s": prev_comp,
        "new_compacted_s": best_comp,
        "ratio": round(best_comp / prev_comp, 4),
        "normalized_ratio": round(
            (best_comp / best_naive) / (prev_comp / prev_naive), 4
        ),
        "remeasured": attempts,
        "ok": ok(),
    }
    if not check["ok"]:
        raise AssertionError(
            "observability default-state overhead gate failed: "
            f"compacted_s {best_comp:.6f}s vs previous {prev_comp:.6f}s "
            f"(abs {check['ratio']:.2%}, normalized "
            f"{check['normalized_ratio']:.2%}, limit {limit:.0%})"
        )
    return check


def main(out_path: str = None) -> dict:
    rows = []
    for tree_log2 in (18, 20):
        for batch_log2 in (12, 14, 16):
            rows.append(measure(tree_log2, batch_log2))
    acceptance = next(
        r for r in rows if r["tree_log2"] == 20 and r["batch_log2"] == 16
    )
    path = pathlib.Path(
        out_path or pathlib.Path(__file__).parent.parent / "BENCH_engine.json"
    )
    per_level = measure_per_level_ntg()
    record = {
        "bench": "engine",
        "workload": "PSA-sorted uniform point lookups, fanout 64, fill 0.7",
        "acceptance": {
            "criterion": "compacted >= 3x naive at 2^16 queries / 2^20 keys",
            "speedup": acceptance["speedup_compacted"],
            "ok": acceptance["speedup_compacted"] >= 3.0,
        },
        "per_level_ntg": {
            "criterion": (
                "per-level NTG cuts simulated global transactions >= 1.15x "
                "vs the global single-width chooser on a skewed tree "
                "(gap-thinned leaves under dense internals)"
            ),
            "speedup": per_level["model_speedup"],
            "ok": per_level["model_speedup"] >= 1.15,
            **per_level,
        },
        "overhead_check": _overhead_check(acceptance, path),
        "rows": rows,
        "metrics": _capture_metrics(acceptance),
    }
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(record["acceptance"], indent=2))
    print(json.dumps(record["per_level_ntg"], indent=2))
    print(json.dumps(record["overhead_check"], indent=2))
    return record


if __name__ == "__main__":  # pragma: no cover
    main()
