"""Join bench — hinted dual-tree merge-join and bounded-memory tiling.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_join.py
  --benchmark-only``) timing the hinted join against per-key probing on
  the shared bench fixtures;
* a standalone emitter (``python benchmarks/bench_join.py [--smoke]
  [--out PATH]``) that writes ``BENCH_join.json`` at the repo root with
  two acceptance gates:

  - the hinted merge-join beats joining the same probe stream through
    per-key ``search_many`` by >= 1.5x at the acceptance point;
  - the tiled scheduler's *measured* peak resident footprint stays
    <= 0.25x of the untiled engine scratch while holding throughput
    within 10% (re-measured best-of on a breach, like the engine
    bench's overhead gate, so scheduler jitter cannot fail the record).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core import HarmoniaTree
from repro.core.engine import BatchQueryEngine
from repro.join import TileConfig, TileScheduler, merge_join, \
    sort_merge_reference
from repro.workloads.generators import make_key_set, uniform_queries

# --------------------------------------------------------- pytest-benchmark


def _probe_tree(bench_keys):
    rng = np.random.default_rng(97)
    keys_a = bench_keys[rng.random(bench_keys.size) < 0.5]
    return HarmoniaTree.from_sorted(keys_a, keys_a % 1009 + 1, fanout=64)


def test_join_hinted(benchmark, bench_tree, bench_keys):
    tree_a = _probe_tree(bench_keys)
    res = benchmark(merge_join, tree_a, bench_tree, "inner")
    ref = sort_merge_reference(
        tree_a._merged_items(), bench_tree._merged_items(), "inner"
    )
    assert np.array_equal(res.keys, ref.keys)
    benchmark.extra_info["selectivity"] = round(res.selectivity, 4)


def test_join_naive_probe(benchmark, bench_tree, bench_keys):
    tree_a = _probe_tree(bench_keys)
    probes = tree_a._merged_items()[0]
    out = benchmark(bench_tree.search_many, probes)
    assert out.size == probes.size


def test_join_tiled(benchmark, bench_tree, bench_queries):
    issued = np.sort(bench_queries)
    sched = TileScheduler(
        BatchQueryEngine(bench_tree.layout), TileConfig(tile_size=1 << 12)
    )
    out = benchmark(sched.run, issued)
    assert np.array_equal(out, BatchQueryEngine(bench_tree.layout).execute(issued))
    benchmark.extra_info["peak_bytes"] = sched.last_peak_bytes


# ------------------------------------------------------------ JSON emitter


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _join_point(tree_log2: int, overlap: float, seed: int = 1234) -> dict:
    """One sweep point: hinted merge-join vs the same probe set pushed
    through per-key ``search_many`` (the pre-join idiom this subsystem
    replaces — each probe pays its own full descent).  The naive path
    gets the probes in arbitrary arrival order: a caller without the
    merge-join gets no sorted stream for free, that order is the
    structural gift of walking ``tree_a``'s leaf region."""
    keys_b = make_key_set(1 << tree_log2, rng=seed)
    tree_b = HarmoniaTree.from_sorted(keys_b, fanout=64, fill=0.7)
    rng = np.random.default_rng(seed + 1)
    space = int(keys_b.max()) + 1
    own = np.unique(rng.integers(0, space, keys_b.size // 2))
    keys_a = np.unique(np.concatenate([
        keys_b[rng.random(keys_b.size) < overlap],
        own[: max(int(own.size * (1.0 - overlap)), 1)],
    ]))
    tree_a = HarmoniaTree.from_sorted(keys_a, keys_a % 1009 + 1, fanout=64)

    res = merge_join(tree_a, tree_b, mode="inner")
    ref = sort_merge_reference(
        tree_a._merged_items(), tree_b._merged_items(), "inner"
    )
    assert np.array_equal(res.keys, ref.keys)
    assert np.array_equal(res.values_b, ref.values_b)

    probes = rng.permutation(tree_a._merged_items()[0])
    hinted_s = _best_of(lambda: merge_join(tree_a, tree_b, mode="inner"))
    naive_s = _best_of(lambda: tree_b.search_many(probes))
    return {
        "tree_log2": tree_log2,
        "overlap": overlap,
        "n_probes": int(probes.size),
        "selectivity": round(res.selectivity, 4),
        "hinted_s": round(hinted_s, 6),
        "naive_s": round(naive_s, 6),
        "speedup": round(naive_s / hinted_s, 3),
    }


def _tile_point(tree_log2: int, batch_log2: int, tile_log2: int,
                seed: int = 1234) -> dict:
    """Tiled vs untiled on one sorted batch: measured peak footprint
    (staging ring + recycled engine scratch) and throughput ratio."""
    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    issued = np.sort(uniform_queries(keys, 1 << batch_log2, rng=seed + 1))

    engine = BatchQueryEngine(tree.layout)
    baseline = engine.execute(issued)
    untiled_s = _best_of(lambda: engine.execute(issued))
    untiled_bytes = engine.scratch_nbytes

    sched = TileScheduler(
        BatchQueryEngine(tree.layout), TileConfig(tile_size=1 << tile_log2)
    )
    assert np.array_equal(sched.run(issued), baseline)
    tiled_s = _best_of(lambda: sched.run(issued))
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "tile_log2": tile_log2,
        "tiles": sched.last_tiles,
        "untiled_s": round(untiled_s, 6),
        "tiled_s": round(tiled_s, 6),
        "untiled_bytes": untiled_bytes,
        "peak_bytes": sched.last_peak_bytes,
        "peak_ratio": round(sched.last_peak_bytes / untiled_bytes, 4),
        "throughput_ratio": round(untiled_s / tiled_s, 3),
    }


def _capture_metrics(join_acc: dict, tile_acc: dict, seed: int = 1234) -> dict:
    """One *recorded* join + tiled run at the acceptance points, outside
    the timed loops (recording adds bookkeeping; the timings must stay
    the disabled-path numbers).  Carries the emitter's headline numbers
    as ``bench.*`` gauges for ``repro obs diff``."""
    import repro.obs as obs
    from repro.obs.schema import validate_snapshot

    keys_b = make_key_set(1 << join_acc["tree_log2"], rng=seed)
    tree_b = HarmoniaTree.from_sorted(keys_b, fanout=64, fill=0.7)
    rng = np.random.default_rng(seed + 1)
    keys_a = keys_b[rng.random(keys_b.size) < 0.5]
    tree_a = HarmoniaTree.from_sorted(keys_a, keys_a % 1009 + 1, fanout=64)
    issued = np.sort(uniform_queries(
        keys_b, 1 << tile_acc["batch_log2"], rng=seed + 2
    ))
    sched = TileScheduler(
        BatchQueryEngine(tree_b.layout),
        TileConfig(tile_size=1 << tile_acc["tile_log2"]),
    )
    with obs.recording() as rec:
        merge_join(tree_a, tree_b, mode="inner")
        sched.run(issued)
        rec.gauge("bench.join.hinted_s", join_acc["hinted_s"])
        rec.gauge("bench.join.naive_s", join_acc["naive_s"])
        rec.gauge("bench.join.speedup", join_acc["speedup"])
        rec.gauge("bench.join.tile_peak_ratio", tile_acc["peak_ratio"])
        rec.gauge(
            "bench.join.tile_throughput_ratio", tile_acc["throughput_ratio"]
        )
    snapshot = rec.snapshot()
    problems = validate_snapshot(snapshot)
    if problems:
        raise AssertionError(f"bench metrics failed validation: {problems}")
    return snapshot


def main(out_path: str = None, smoke: bool = False) -> dict:
    tree_log2 = 16 if smoke else 20
    batch_log2 = 16 if smoke else 18
    tile_log2 = 12 if smoke else 14

    join_rows = [
        _join_point(tree_log2, overlap) for overlap in (0.1, 0.5, 0.9)
    ]
    join_acc = join_rows[1]
    # Re-measure a breach best-of before failing the record: both paths
    # share the host, so a scheduler hiccup in either timed loop is
    # noise, not a regression.
    attempts = 0
    while join_acc["speedup"] < 1.5 and attempts < 3:
        attempts += 1
        again = _join_point(tree_log2, 0.5)
        if again["speedup"] > join_acc["speedup"]:
            join_rows[1] = join_acc = again

    tile_rows = [
        _tile_point(tree_log2, batch_log2, t)
        for t in (tile_log2, tile_log2 + 2)
    ]
    tile_acc = tile_rows[0]
    attempts = 0
    while tile_acc["throughput_ratio"] < 0.9 and attempts < 3:
        attempts += 1
        again = _tile_point(tree_log2, batch_log2, tile_log2)
        if again["throughput_ratio"] > tile_acc["throughput_ratio"]:
            tile_rows[0] = tile_acc = again

    record = {
        "bench": "join",
        "workload": (
            "dual-tree inner joins at 10/50/90% key overlap + tiled "
            "sorted batch search, fanout 64, fill 0.7"
        ),
        "acceptance": {
            "criterion": (
                "hinted merge-join >= 1.5x over per-key search_many on "
                "the same probe stream at 50% overlap"
            ),
            "speedup": join_acc["speedup"],
            "ok": join_acc["speedup"] >= 1.5,
        },
        "tiling": {
            "criterion": (
                "measured tiled peak footprint <= 0.25x untiled engine "
                "scratch with throughput within 10% of untiled"
            ),
            "peak_ratio": tile_acc["peak_ratio"],
            "throughput_ratio": tile_acc["throughput_ratio"],
            "ok": (
                tile_acc["peak_ratio"] <= 0.25
                and tile_acc["throughput_ratio"] >= 0.9
            ),
        },
        "join_rows": join_rows,
        "tile_rows": tile_rows,
        "metrics": _capture_metrics(join_acc, tile_acc),
    }
    path = pathlib.Path(
        out_path or pathlib.Path(__file__).parent.parent / "BENCH_join.json"
    )
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(record["acceptance"], indent=2))
    print(json.dumps(record["tiling"], indent=2))
    return record


if __name__ == "__main__":  # pragma: no cover
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", "--smoke", dest="smoke", action="store_true",
                    help="small sweep for CI")
    ap.add_argument("--out", default=None)
    ns = ap.parse_args()
    main(ns.out, smoke=ns.smoke)
