"""§4.2 bench — NTG static profiling cost and model validation."""

from repro.analysis.model_check import validate_ntg_model
from repro.core.ntg import choose_group_size


def test_ntg_static_profiling(benchmark, bench_tree, prepared_full):
    """The profiling step the paper says is cheap ("some simple profiling
    ... collected on CPU easily") — time it."""
    sample = prepared_full.queries[:1000]
    sel = benchmark(choose_group_size, bench_tree.layout, sample)
    benchmark.extra_info["chosen_gs"] = sel.group_size


def test_ntg_model_vs_best(benchmark, device):
    v = benchmark.pedantic(
        validate_ntg_model,
        kwargs=dict(fanout=64, n_keys=1 << 14, n_queries=1 << 12,
                    device=device, rng=3),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["model_gs"] = v.model_gs
    benchmark.extra_info["best_gs"] = v.best_gs
    best = v.throughput_by_gs[v.best_gs]
    assert v.throughput_by_gs[v.model_gs] >= 0.75 * best
