"""Figure 2 bench — memory transactions per warp on the naive GPU tree."""

from repro.analysis.gaps import memory_transaction_gap


def test_fig02_memory_transaction_gap(benchmark):
    gap = benchmark(memory_transaction_gap, n_queries=20_000, rng=0)
    benchmark.extra_info["worst"] = round(gap.worst, 3)
    benchmark.extra_info["measured"] = round(gap.measured, 3)
    benchmark.extra_info["best"] = gap.best
    assert 0.9 * gap.worst <= gap.measured <= gap.worst
