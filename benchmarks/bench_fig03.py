"""Figure 3 bench — per-level comparison divergence."""

from repro.analysis.gaps import build_gap_tree, query_divergence_gap


def test_fig03_query_divergence(benchmark):
    layout = build_gap_tree(rng=0)
    div = benchmark(query_divergence_gap, n_queries=100, layout=layout, rng=0)
    for row in div.rows():
        benchmark.extra_info[f"level{row['tree_level']}"] = (
            f"min={row['min']} avg={row['avg']} max={row['max']}"
        )
    assert 2.0 <= float(div.avg_comparisons.mean()) <= 6.0
