"""Shard bench — the multi-process sharded service tier vs the
single-process update+query path.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_shard.py
  --benchmark-only``) timing one query batch and one paper-mix update
  batch through a 2-worker :class:`~repro.shard.ShardedTree`;
* a standalone emitter (``python benchmarks/bench_shard.py [--quick]``)
  that times a mixed search+update workload through the single-process
  path and through 2- and 4-worker sharded trees, and writes
  ``BENCH_shard.json`` at the repo root.

The acceptance criterion (>= 1.5x over single-process) presumes >= 4
cores: each worker owns a core and the wall clock becomes the slowest
shard plus routing overhead.  On a core-limited container every worker
time-shares one CPU, so fan-out cannot beat one process — the emitter
records ``cpu_count``, measures the routing overhead (scatter + gather
spans) from a recorded run, and projects the multi-core time as
``t_single / n_shards + overhead`` alongside the measured numbers, the
same convention BENCH_stream.json used in PR 2.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.core import HarmoniaTree
from repro.shard import ShardedTree
from repro.workloads.generators import make_key_set, uniform_queries
from repro.workloads.mixes import PAPER_UPDATE_MIX, make_update_batch
from benchmarks.conftest import BENCH_SCALE


# --------------------------------------------------------- pytest-benchmark


@pytest.fixture(scope="module")
def sharded_tree(bench_keys):
    tree = ShardedTree.from_sorted(bench_keys, n_shards=2, fanout=64,
                                   fill=0.7)
    yield tree
    tree.close()


def test_shard_search(benchmark, sharded_tree, bench_queries):
    res = benchmark.pedantic(
        lambda: sharded_tree.search_many(bench_queries),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["queries"] = int(bench_queries.size)
    benchmark.extra_info["n_shards"] = 2
    assert res.size == bench_queries.size


def test_shard_apply(benchmark, sharded_tree, bench_keys):
    ops = make_update_batch(bench_keys, BENCH_SCALE.update_batch,
                            mix=PAPER_UPDATE_MIX, rng=92)
    res = benchmark.pedantic(
        lambda: sharded_tree.apply_batch(ops), rounds=3, iterations=1
    )
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["n_shards"] = 2
    # Later rounds re-apply the same batch to the mutated tree, so some
    # inserts legitimately fail; the accounting must still add up.
    assert res.inserted + res.updated + res.deleted + res.failed == len(ops)


# ------------------------------------------------------------ JSON emitter


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload(keys, batch_log2, seed):
    queries = uniform_queries(keys, 1 << batch_log2, rng=seed)
    ops = make_update_batch(keys, 1 << batch_log2, mix=PAPER_UPDATE_MIX,
                            rng=seed + 1)
    return queries, ops


def _single_round(keys, queries, ops):
    """One single-process round: query batch then update batch, the same
    work the router fans out.  A fresh tree per call keeps rounds
    independent (apply_batch swaps the layout in place)."""
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)

    def run():
        tree.search_many(queries)
        tree.apply_batch(ops)

    return run


def measure(tree_log2: int, batch_log2: int, n_shards: int,
            seed: int = 1234, reps: int = 3) -> dict:
    """One sweep point: the mixed workload through ``n_shards`` workers
    (1 means the in-process, unsharded path)."""
    keys = make_key_set(1 << tree_log2, rng=seed)
    queries, ops = _workload(keys, batch_log2, seed + 7)

    if n_shards == 1:
        t = _best_of(lambda: _single_round(keys, queries, ops)(), reps)
    else:
        def one_round():
            with ShardedTree.from_sorted(keys, n_shards=n_shards,
                                         fanout=64, fill=0.7) as st:
                t0 = time.perf_counter()
                st.search_many(queries)
                st.apply_batch(ops)
                return time.perf_counter() - t0

        # Spawn/load happens outside the timed region: the service tier
        # is long-lived, so steady-state rounds are what we compare.
        t = min(one_round() for _ in range(reps))
    n_items = 2 * (1 << batch_log2)
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "n_shards": n_shards,
        "time_s": round(t, 6),
        "kops": round(n_items / t / 1e3, 1),
    }


def _routing_overhead(tree_log2: int, batch_log2: int, n_shards: int,
                      seed: int = 1234) -> dict:
    """One *recorded* sharded round — outside the timed loops — returning
    the scatter/gather span totals (the router-side serial work that a
    multi-core host cannot hide) plus the full metrics snapshot."""
    import repro.obs as obs
    from repro.obs.schema import validate_snapshot

    keys = make_key_set(1 << tree_log2, rng=seed)
    queries, ops = _workload(keys, batch_log2, seed + 7)
    with ShardedTree.from_sorted(keys, n_shards=n_shards, fanout=64,
                                 fill=0.7) as st:
        with obs.recording() as rec:
            st.search_many(queries)
            st.apply_batch(ops)
        snapshot = rec.snapshot()
        spans = rec.spans()
    problems = validate_snapshot(snapshot)
    if problems:
        raise AssertionError(f"bench metrics failed validation: {problems}")
    # SpanRecord = (name, cat, start_s, end_s, track, depth, args)
    route_s = sum(
        end - start for name, _, start, end, *_ in spans
        if name in ("shard.scatter", "shard.gather")
    )
    # Recording also turns tracing on, so the snapshot carries the merged
    # ``shard[i].*`` worker metrics and one process lane per worker.
    counters = snapshot.get("counters", {})
    tracing = {
        "process_lanes": 1 + len(rec.remote_processes()),
        "requests": int(counters.get("trace.requests", 0)),
        "spans_merged": int(counters.get("trace.spans_merged", 0)),
    }
    return {"route_s": round(route_s, 6), "snapshot": snapshot,
            "tracing": tracing}


def main(out_path: str = None, smoke: bool = False) -> dict:
    tree_log2, batch_log2 = (16, 12) if smoke else (18, 14)
    shard_counts = (1, 2) if smoke else (1, 2, 4)
    rows = [measure(tree_log2, batch_log2, n) for n in shard_counts]
    single = rows[0]
    best_sharded = min(rows[1:], key=lambda r: r["time_s"])
    speedup = round(single["time_s"] / best_sharded["time_s"], 2)

    overhead = _routing_overhead(tree_log2, batch_log2,
                                 best_sharded["n_shards"])
    # Multi-core projection: each worker owns a core, so the fan-out
    # portion divides by the shard count while the router-side scatter +
    # gather stays serial.
    n = best_sharded["n_shards"]
    model_s = single["time_s"] / n + overhead["route_s"]
    model_speedup = round(single["time_s"] / model_s, 2)
    cpu_count = os.cpu_count() or 1

    record = {
        "bench": "shard",
        "workload": "uniform query batch + paper-mix update batch "
        f"(2^{batch_log2} each) on a 2^{tree_log2}-key tree, fanout 64",
        "cpu_count": cpu_count,
        "acceptance": {
            "criterion": "sharded service >= 1.5x the single-process "
            "update+query path on >= 4 cores",
            "speedup": speedup,
            "ok": speedup >= 1.5,
            "core_limited": cpu_count < 4,
            "model_multicore_s": round(model_s, 6),
            "model_multicore_speedup": model_speedup,
            "route_overhead_s": overhead["route_s"],
            "note": (
                f"on this {cpu_count}-CPU container all workers "
                "time-share one core, so fan-out cannot beat a single "
                "process (the measured ratio is pure transport+routing "
                "overhead). model_multicore_speedup projects >= 4 cores "
                "as t_single / n_shards plus the measured serial "
                "scatter+gather time, the convention BENCH_stream.json "
                "established in PR 2."
            ) if cpu_count < 4 else (
                "measured on a multi-core host; workers run on their "
                "own cores."
            ),
        },
        "rows": rows,
        # Structured measured-vs-projected convention (the prose-only
        # acceptance note predates it): parsers can split the acceptance
        # fields without special-casing this bench.
        "notes": {
            "convention": "measured-vs-projected",
            "measured": ["speedup", "route_overhead_s"],
            "projected": ["model_multicore_s", "model_multicore_speedup"],
            "projection_basis": (
                "t_single / n_shards + measured serial scatter+gather "
                "(workers pinned to their own cores)"
            ),
            "projection_applies": cpu_count < 4,
        },
        "tracing": overhead["tracing"],
        "metrics": overhead["snapshot"],
    }
    path = pathlib.Path(
        out_path or pathlib.Path(__file__).parent.parent / "BENCH_shard.json"
    )
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(record["acceptance"], indent=2))
    return record


if __name__ == "__main__":  # pragma: no cover
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", "--smoke", dest="smoke", action="store_true",
                    help="single small sweep point (CI)")
    ap.add_argument("--out", default=None)
    ns = ap.parse_args()
    main(ns.out, smoke=ns.smoke)
