"""Figure 14 bench — batch update throughput (both pipelines are real).

Every Harmonia mode reports ``movement_share`` in ``extra_info`` — the
fraction of the executor's phase time spent in the movement/compaction
stage — so the before/after of the gapped-leaf work is directly visible in
``BENCH_update.json``: the vectorized pipeline pays a full movement
rebuild per batch, the gapped executor demotes it to a rare compaction
epoch.
"""

import pytest

from repro.baselines.hbtree import HBTree
from repro.core import HarmoniaTree, UpdateConfig
from repro.workloads.generators import make_key_set
from repro.workloads.mixes import PAPER_UPDATE_MIX, make_update_batch
from benchmarks.conftest import BENCH_SCALE, N_KEYS


@pytest.fixture(scope="module")
def update_world():
    keys = make_key_set(N_KEYS, rng=91)
    ops = make_update_batch(keys, BENCH_SCALE.update_batch,
                            mix=PAPER_UPDATE_MIX, rng=92)
    return keys, ops


def _movement_share(result) -> float:
    """Movement-phase share of the executor's accounted phase time."""
    total = result.timer.total()
    if total <= 0:
        return 0.0
    return result.timer.get("movement") / total


def test_fig14_harmonia_batch_update(benchmark, update_world):
    """The default executor — the vectorized plan/apply/movement pipeline."""
    keys, ops = update_world

    def run():
        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        return tree.apply_batch(ops, UpdateConfig(n_threads=4))

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["split_leaves"] = res.split_leaves
    benchmark.extra_info["movement_share"] = round(_movement_share(res), 4)
    assert res.failed == 0


def test_fig14_harmonia_batch_update_gapped(benchmark, update_world):
    """The gapped executor — in-place absorption, movement demoted to a
    rare compaction epoch."""
    keys, ops = update_world

    def run():
        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        return tree.apply_batch(ops, UpdateConfig(mode="gapped"))

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["split_leaves"] = res.split_leaves
    benchmark.extra_info["movement_share"] = round(_movement_share(res), 4)
    assert res.failed == 0


def test_fig14_harmonia_batch_update_scalar(benchmark, update_world):
    """The per-op Algorithm 1 reference path, kept for comparison."""
    keys, ops = update_world

    def run():
        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        return tree.apply_batch(
            ops, UpdateConfig(mode="scalar", n_threads=4)
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["movement_share"] = round(_movement_share(res), 4)
    assert res.failed == 0


def test_fig14_hbtree_batch_update(benchmark, update_world):
    keys, ops = update_world

    def run():
        hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)
        return hb.apply_batch(ops, n_threads=4)

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["sync_s"] = round(counts["sync_s"], 4)
    assert counts["failed"] == 0


def test_fig14_movement_only(benchmark, update_world):
    """The deferred-movement pass in isolation — the cost §3.2.2's design
    amortizes and the gapped executor mostly skips."""
    from repro.core.update import BatchUpdater

    keys, ops = update_world
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    updater = BatchUpdater(tree.layout, fill=0.7)
    updater.apply_batch(ops, n_threads=1)
    out = benchmark(updater.movement)
    assert out is not None
