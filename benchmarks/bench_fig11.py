"""Figure 11 bench — overall throughput, Harmonia vs HB+tree.

Times the real vectorized executions of both systems on the same batch;
modeled GPU throughput (the paper's metric) rides along in extra_info.
"""

from repro.core import SearchConfig
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput


def test_fig11_harmonia_search(benchmark, bench_tree, bench_queries,
                               prepared_full, device):
    out = benchmark(bench_tree.search_batch, bench_queries, SearchConfig.full())
    assert out.size == bench_queries.size
    metrics = simulate_harmonia_search(
        bench_tree.layout, prepared_full.queries, prepared_full.group_size,
        device=device,
    )
    sort_s = estimate_sort_time(
        bench_queries.size, prepared_full.psa.sort_passes, device
    )
    tp = modeled_throughput(metrics, bench_tree.layout, device, sort_s=sort_s)
    benchmark.extra_info["modeled_gqs"] = round(tp / 1e9, 3)
    benchmark.extra_info["group_size"] = prepared_full.group_size


def test_fig11_hbtree_search(benchmark, bench_hbtree, bench_queries, device):
    out = benchmark(bench_hbtree.search_batch, bench_queries)
    assert out.size == bench_queries.size
    metrics = bench_hbtree.simulate_search(bench_queries, device=device)
    tp = modeled_throughput(metrics, bench_hbtree._layout, device)
    benchmark.extra_info["modeled_gqs"] = round(tp / 1e9, 3)


def test_fig11_modeled_speedup(benchmark, bench_tree, bench_hbtree,
                               bench_queries, prepared_full, device):
    def speedup():
        m_ha = simulate_harmonia_search(
            bench_tree.layout, prepared_full.queries,
            prepared_full.group_size, device=device,
        )
        m_hb = bench_hbtree.simulate_search(bench_queries, device=device)
        sort_s = estimate_sort_time(
            bench_queries.size, prepared_full.psa.sort_passes, device
        )
        tp_ha = modeled_throughput(m_ha, bench_tree.layout, device, sort_s=sort_s)
        tp_hb = modeled_throughput(m_hb, bench_hbtree._layout, device)
        return tp_ha / tp_hb

    ratio = benchmark.pedantic(speedup, rounds=1, iterations=1)
    benchmark.extra_info["modeled_speedup"] = round(ratio, 2)
    assert ratio > 1.0
