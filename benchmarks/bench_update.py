"""Update bench — per-op scalar path vs the vectorized plan/apply/movement
pipeline vs the gapped in-place executor (§3.2.2).

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_update.py
  --benchmark-only``) timing one paper-mix batch through each executor on
  the shared bench fixtures;
* a standalone emitter (``python benchmarks/bench_update.py [--smoke]``)
  that sweeps tree sizes x batch sizes and writes ``BENCH_update.json`` at
  the repo root.  The acceptance point (2^14 mixed ops on a 2^20-key tree)
  compares the vectorized pipeline against the best scalar configuration
  (per-op :class:`~repro.core.update.BatchUpdater` under Algorithm 1
  locking, best of 1 and 4 threads); the Figure 14 paper mix (5% insert /
  95% update) is re-timed through all three executors with two gapped
  criteria on top: >= 1.5x over the vectorized pipeline with a movement-
  epoch time share < 15%, and a gap-absorption ratio >= 0.8 (also wired
  into CI via ``--gap-check``).

The scalar path mutates the layout it is given, so every scalar rep gets a
fresh ``layout.copy()`` *outside* the timed region.  The vectorized and
gapped executors never mutate their input — reps re-run against the same
snapshot, exactly how the :class:`~repro.core.epoch.EpochManager` drives
them.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.core import EpochManager, HarmoniaTree, UpdateConfig
from repro.core.update import BatchUpdater
from repro.core.update_plan import GappedBatchUpdater, VectorizedBatchUpdater
from repro.workloads.generators import make_key_set
from repro.workloads.mixes import PAPER_UPDATE_MIX, UpdateMix, make_update_batch
from benchmarks.conftest import BENCH_SCALE

#: The emitter's sweep mix exercises every pipeline stage: fast-path
#: updates, replayed inserts and deletes, movement with splits and merges.
MIXED = UpdateMix(insert=0.1, update=0.8, delete=0.1)


# --------------------------------------------------------- pytest-benchmark


def _bench_ops(keys):
    return make_update_batch(keys, BENCH_SCALE.update_batch,
                             mix=PAPER_UPDATE_MIX, rng=92)


def test_update_scalar(benchmark, bench_keys, bench_tree):
    ops = _bench_ops(bench_keys)
    base = bench_tree.layout

    def setup():
        return (HarmoniaTree(base.copy(), fill=0.7),), {}

    def run(tree):
        return tree.apply_batch(ops, UpdateConfig(mode="scalar"))

    res = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    assert res.failed == 0


def test_update_vectorized(benchmark, bench_keys, bench_tree):
    ops = _bench_ops(bench_keys)
    base = bench_tree.layout

    def run():
        # Non-mutating: the same snapshot serves every round.
        return HarmoniaTree(base, fill=0.7).apply_batch(
            ops, UpdateConfig(mode="vectorized")
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    benchmark.extra_info["split_leaves"] = res.split_leaves
    assert res.failed == 0


def test_update_gapped(benchmark, bench_keys, bench_tree):
    ops = _bench_ops(bench_keys)
    base = bench_tree.layout

    def run():
        # Non-mutating: absorption happens on a private working copy.
        return HarmoniaTree(base, fill=0.7).apply_batch(
            ops, UpdateConfig(mode="gapped")
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["ops"] = len(ops)
    total = res.timer.total()
    benchmark.extra_info["movement_share"] = (
        round(res.timer.get("movement") / total, 4) if total > 0 else 0.0
    )
    assert res.failed == 0


# ------------------------------------------------------------ JSON emitter


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scalar_once(layout, fill, ops, n_threads):
    up = BatchUpdater(layout, fill=fill)
    up.apply_batch(ops, n_threads=n_threads)
    return up, up.movement()


def measure(tree_log2: int, batch_log2: int, mix: UpdateMix = MIXED,
            seed: int = 1234, reps: int = 3) -> dict:
    """One sweep point: scalar (best of 1 and 4 threads) vs vectorized vs
    gapped."""
    keys = make_key_set(1 << tree_log2, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    layout = tree.layout
    ops = make_update_batch(keys, 1 << batch_log2, mix=mix, rng=seed + 1)

    # Equivalence sanity before timing anything: identical final layouts
    # for the vectorized pipeline, identical accounting + query results
    # for the gapped executor (its physical layout differs by design).
    ref, ref_layout = _scalar_once(layout.copy(), 0.7, ops, n_threads=1)
    vec = VectorizedBatchUpdater(layout, fill=0.7)
    vres = vec.run(ops)
    assert np.array_equal(ref_layout.key_region, vec.new_layout.key_region)
    assert np.array_equal(ref_layout.leaf_values, vec.new_layout.leaf_values)
    assert ref.result.n_effective == vres.n_effective
    gap = GappedBatchUpdater(layout, fill=0.7)
    gres = gap.run(ops)
    assert gres.n_effective == ref.result.n_effective
    assert gap.new_layout.n_keys == ref_layout.n_keys
    from repro.core.search import search_batch
    probe = np.asarray([op.key for op in ops[: 1 << 12]], dtype=np.int64)
    assert np.array_equal(search_batch(gap.new_layout, probe),
                          search_batch(ref_layout, probe))

    t_scalar = float("inf")
    scalar_threads = 1
    for n_threads in (1, 4):
        copies = [layout.copy() for _ in range(reps)]
        it = iter(copies)
        t = _best_of(
            lambda: _scalar_once(next(it), 0.7, ops, n_threads), reps
        )
        if t < t_scalar:
            t_scalar, scalar_threads = t, n_threads

    t_vec = _best_of(
        lambda: VectorizedBatchUpdater(layout, fill=0.7).run(ops), reps
    )
    t_gap = _best_of(
        lambda: GappedBatchUpdater(layout, fill=0.7).run(ops), reps
    )
    phases = vres.timer
    gphases = gres.timer
    gap_total = gphases.total()
    n_ops = 1 << batch_log2
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "mix": {"insert": mix.insert, "update": mix.update,
                "delete": mix.delete},
        "scalar_s": round(t_scalar, 6),
        "scalar_threads": scalar_threads,
        "vectorized_s": round(t_vec, 6),
        "speedup": round(t_scalar / t_vec, 2),
        "vectorized_kops": round(n_ops / t_vec / 1e3, 1),
        "plan_ms": round(phases.get("plan") * 1e3, 3),
        "apply_ms": round(phases.get("apply") * 1e3, 3),
        "movement_ms": round(phases.get("movement") * 1e3, 3),
        "fast_ops": vec.plan.n_fast,
        "replay_ops": vec.plan.n_replay,
        "split_leaves": vres.split_leaves,
        "moved_clean": vres.moved_clean,
        "rebuilt_dirty": vres.rebuilt_dirty,
        "gapped_s": round(t_gap, 6),
        "gapped_kops": round(n_ops / t_gap / 1e3, 1),
        "gapped_speedup_vs_vectorized": round(t_vec / t_gap, 2),
        "gapped_movement_share": round(
            gphases.get("movement") / gap_total, 4
        ) if gap_total > 0 else 0.0,
        "gap_absorption": round(gap.absorbed_ops / max(n_ops, 1), 4),
        "movement_epochs": gap.movement_epochs,
    }


# ------------------------------------------------- concurrent epoch bench


def measure_concurrent(tree_log2: int, batch_log2: int, rounds: int = 8,
                       seed: int = 1234, reps: int = 2) -> dict:
    """Mixed read/write rounds: synchronous flush vs snapshot+delta.

    Each round submits one mixed batch, flushes, then serves a read batch
    — the service-loop shape the EpochManager exists for.  Read latency
    is measured from the *round start*, so the synchronous mode pays the
    full rebuild before its reads return while the concurrent mode pays
    only batch resolution (the rebuild runs in the drain); the final
    ``sync()`` is inside the concurrent wall, so deferred work is not
    dropped from the throughput comparison.  Equivalence of every read
    batch (and the final contents) is asserted before any timing is
    reported.
    """
    keys = make_key_set(1 << tree_log2, rng=seed)
    n_batch = 1 << batch_log2
    rng = np.random.default_rng(seed + 7)
    batches = [
        make_update_batch(keys, n_batch, mix=MIXED, rng=seed + 11 + r)
        for r in range(rounds)
    ]
    reads = [
        np.concatenate([
            rng.choice(keys, size=n_batch // 2),
            rng.integers(0, int(keys.max()) + 2, size=n_batch // 2),
        ]).astype(np.int64)
        for _ in range(rounds)
    ]

    def run_mode(concurrent: bool):
        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        mgr = EpochManager(
            tree, update_config=UpdateConfig(),
            concurrent=concurrent, drain_threshold=3 * n_batch,
        )
        lat, outs = [], []
        t0 = time.perf_counter()
        for ops, q in zip(batches, reads):
            r0 = time.perf_counter()
            mgr.submit_many(ops)
            mgr.flush()
            outs.append(mgr.search_many(q))
            lat.append(time.perf_counter() - r0)
        mgr.sync()
        wall = time.perf_counter() - t0
        return wall, lat, outs, mgr

    sync_wall, sync_lat, sync_outs, sync_mgr = run_mode(False)
    conc_wall, conc_lat, conc_outs, conc_mgr = run_mode(True)
    for rep in range(reps - 1):  # keep the best wall per mode
        w, l, _, _ = run_mode(False)
        if w < sync_wall:
            sync_wall, sync_lat = w, l
        w, l, _, _ = run_mode(True)
        if w < conc_wall:
            conc_wall, conc_lat = w, l

    # Equivalence gate: never report a speedup for wrong answers.
    for a, b in zip(sync_outs, conc_outs):
        assert np.array_equal(a, b), "concurrent reads diverged"
    ka, va = sync_mgr.dump_items()
    kb, vb = conc_mgr.dump_items()
    assert np.array_equal(ka, kb) and np.array_equal(va, vb)

    # Read-only overlay overhead: the same query batch against the plain
    # base tree vs a pinned snapshot carrying an undrained 2-batch delta.
    base = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    mgr = EpochManager(base, update_config=UpdateConfig(),
                       concurrent=True, drain_threshold=1 << 62)
    for ops in batches[:2]:
        mgr.submit_many(ops)
        mgr.flush()
    snap = mgr._snapshot()
    plain = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    q = reads[0]
    # Interleave the two timings so background-load drift on the host
    # hits both sides equally instead of biasing the ratio.
    t_plain = t_overlay = float("inf")
    for _ in range(9):
        t_plain = min(t_plain, _best_of(lambda: plain.search_many(q), 1))
        t_overlay = min(t_overlay, _best_of(lambda: snap.search_many(q), 1))
    overhead = t_overlay / t_plain - 1.0

    total_items = rounds * 2 * n_batch  # reads + writes per round
    return {
        "tree_log2": tree_log2,
        "batch_log2": batch_log2,
        "rounds": rounds,
        "mix": {"insert": MIXED.insert, "update": MIXED.update,
                "delete": MIXED.delete},
        "sync_wall_s": round(sync_wall, 6),
        "concurrent_wall_s": round(conc_wall, 6),
        "mixed_speedup": round(sync_wall / conc_wall, 2),
        "mixed_kops": round(total_items / conc_wall / 1e3, 1),
        "sync_read_round_max_ms": round(max(sync_lat) * 1e3, 3),
        "concurrent_read_round_max_ms": round(max(conc_lat) * 1e3, 3),
        "read_only_plain_s": round(t_plain, 6),
        "read_only_overlay_s": round(t_overlay, 6),
        "overlay_overhead": round(overhead, 4),
        "delta_size_at_probe": snap.delta.size,
        "drains": conc_mgr.drains,
        "flushes": conc_mgr.epoch,
        "equivalent": True,
    }


def _capture_metrics(acceptance: dict, seed: int = 1234) -> dict:
    """One *recorded* vectorized run of the acceptance point — outside the
    timed loops so the emitted timings stay disabled-path numbers — plus
    the emitter's headline figures as ``bench.*`` gauges."""
    import repro.obs as obs
    from repro.obs.schema import validate_snapshot

    keys = make_key_set(1 << acceptance["tree_log2"], rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
    ops = make_update_batch(keys, 1 << acceptance["batch_log2"],
                            mix=MIXED, rng=seed + 1)
    with obs.recording() as rec:
        VectorizedBatchUpdater(tree.layout, fill=0.7).run(ops)
        GappedBatchUpdater(tree.layout, fill=0.7).run(ops)
        # A short concurrent session so the epoch.* / delta.* family is
        # present (and catalogue-validated) in the emitted snapshot.
        mgr = EpochManager(
            HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7),
            update_config=UpdateConfig(), concurrent=True,
            drain_threshold=1 << 62,
        )
        mgr.submit_many(ops)
        mgr.flush()
        mgr.search_many(np.asarray([op.key for op in ops[:1024]],
                                   dtype=np.int64))
        mgr.sync()
        rec.gauge("bench.update.scalar_s", acceptance["scalar_s"])
        rec.gauge("bench.update.vectorized_s", acceptance["vectorized_s"])
        rec.gauge("bench.update.speedup", acceptance["speedup"])
        rec.gauge("bench.update.gapped_s", acceptance["gapped_s"])
        rec.gauge("bench.update.gapped_speedup",
                  acceptance["gapped_speedup_vs_vectorized"])
    snapshot = rec.snapshot()
    problems = validate_snapshot(snapshot)
    if problems:
        raise AssertionError(f"bench metrics failed validation: {problems}")
    return snapshot


def main(out_path: str = None, smoke: bool = False) -> dict:
    rows = []
    points = ([(18, 12)] if smoke
              else [(18, 12), (18, 14), (20, 12), (20, 14)])
    for tree_log2, batch_log2 in points:
        rows.append(measure(tree_log2, batch_log2))
    acceptance = rows[-1]

    # Figure 14's paper mix through all three executors: the default swap
    # must leave the headline update throughput no worse, and the gapped
    # executor must beat the vectorized pipeline by >= 1.5x with the
    # movement rebuild demoted below 15% of its phase time.
    fig14_log2 = points[-1]
    fig14 = measure(fig14_log2[0], fig14_log2[1], mix=PAPER_UPDATE_MIX)

    # Snapshot epochs + delta: mixed read/write service loop, synchronous
    # flush vs concurrent publish-then-drain (docs/epochs.md).
    conc_point = (18, 12) if smoke else (20, 13)
    concurrent = measure_concurrent(
        conc_point[0], conc_point[1],
        rounds=6 if smoke else 8,
        reps=1 if smoke else 2,
    )
    record = {
        "bench": "update",
        "workload": "mixed insert/update/delete batches, fanout 64, "
        "fill 0.7",
        "cpu_count": os.cpu_count() or 1,
        "acceptance": {
            "criterion": "vectorized pipeline >= 3x the scalar per-op path "
            f"at 2^{acceptance['batch_log2']} mixed ops on a "
            f"2^{acceptance['tree_log2']}-key tree",
            "speedup": acceptance["speedup"],
            "ok": acceptance["speedup"] >= 3.0,
            "fig14_criterion": "paper mix (5% insert / 95% update) no "
            "worse than the scalar path",
            "fig14_speedup": fig14["speedup"],
            "fig14_ok": fig14["speedup"] >= 1.0,
            "gapped_criterion": "gapped executor >= 1.5x the vectorized "
            "pipeline on the paper mix with movement-epoch time share "
            "< 15%",
            "gapped_speedup": fig14["gapped_speedup_vs_vectorized"],
            "gapped_movement_share": fig14["gapped_movement_share"],
            "gap_absorption": fig14["gap_absorption"],
            "gapped_ok": (
                fig14["gapped_speedup_vs_vectorized"] >= 1.5
                and fig14["gapped_movement_share"] < 0.15
            ),
            "concurrent_criterion": "snapshot+delta mixed read/write "
            "throughput >= 1.3x the synchronous-flush baseline, read-only "
            "delta-merge overhead <= 10%",
            "concurrent_mixed_speedup": concurrent["mixed_speedup"],
            "concurrent_overlay_overhead": concurrent["overlay_overhead"],
            "concurrent_ok": (
                concurrent["mixed_speedup"] >= 1.3
                and concurrent["overlay_overhead"] <= 0.10
            ),
        },
        "rows": rows,
        "fig14_paper_mix": fig14,
        "concurrent": concurrent,
        "metrics": _capture_metrics(acceptance),
    }
    path = pathlib.Path(
        out_path or pathlib.Path(__file__).parent.parent / "BENCH_update.json"
    )
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(record["acceptance"], indent=2))
    return record


def gap_check(min_absorption: float = 0.8) -> None:
    """CI quick gate: one small fig14 paper-mix point through the gapped
    executor must absorb at least ``min_absorption`` of its ops in place.
    Exits non-zero (via AssertionError) when the ratio regresses."""
    row = measure(18, 12, mix=PAPER_UPDATE_MIX, reps=1)
    print(json.dumps({k: row[k] for k in
                      ("gap_absorption", "gapped_movement_share",
                       "gapped_speedup_vs_vectorized",
                       "movement_epochs")}, indent=2))
    assert row["gap_absorption"] >= min_absorption, (
        f"gap absorption {row['gap_absorption']} < {min_absorption} "
        "on the standard fig14 paper mix"
    )
    print(f"gap-check OK: absorption {row['gap_absorption']} >= "
          f"{min_absorption}")


def delta_check(max_overhead: float = 0.15) -> None:
    """CI quick gate for the concurrent epoch path: one small mixed
    read/write point must (a) produce byte-identical reads to the
    synchronous baseline (asserted inside :func:`measure_concurrent`) and
    (b) keep the read-only delta-overlay overhead under ``max_overhead``.
    Exits non-zero (via AssertionError) on regression."""
    row = measure_concurrent(18, 12, rounds=5, reps=1)
    print(json.dumps({k: row[k] for k in
                      ("mixed_speedup", "overlay_overhead",
                       "delta_size_at_probe", "drains", "flushes",
                       "equivalent")}, indent=2))
    assert row["overlay_overhead"] <= max_overhead, (
        f"delta overlay overhead {row['overlay_overhead']} > {max_overhead} "
        "on the standard concurrent point"
    )
    print(f"delta-check OK: overlay overhead {row['overlay_overhead']} <= "
          f"{max_overhead}")


if __name__ == "__main__":  # pragma: no cover
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="single small sweep point (CI)")
    ap.add_argument("--gap-check", action="store_true",
                    help="CI quick gate: fail if the gapped executor's "
                    "absorption ratio < 0.8 on a small fig14 paper mix")
    ap.add_argument("--delta-check", action="store_true",
                    help="CI quick gate: fail if the concurrent epoch "
                    "path's read-only overlay overhead > 0.15 (equivalence "
                    "is asserted inside the measurement)")
    ap.add_argument("--concurrent", action="store_true",
                    help="run only the concurrent mixed read/write "
                    "measurement and print its row")
    ap.add_argument("--out", default=None)
    ns = ap.parse_args()
    if ns.gap_check:
        gap_check()
    elif ns.delta_check:
        delta_check()
    elif ns.concurrent:
        row = measure_concurrent(*((18, 12) if ns.smoke else (20, 13)),
                                 rounds=6 if ns.smoke else 8,
                                 reps=1 if ns.smoke else 2)
        print(json.dumps(row, indent=2))
    else:
        main(ns.out, smoke=ns.smoke)
