"""Figure 10 bench — node-quarter usage distribution."""

import pytest

from repro.analysis.node_usage import (
    build_random_insertion_tree,
    node_quarter_distribution,
)


@pytest.mark.parametrize("fanout", [8, 32, 128])
def test_fig10_quarter_distribution(benchmark, fanout):
    layout = build_random_insertion_tree(6_000, fanout=fanout, rng=fanout)
    dist = benchmark(node_quarter_distribution, layout, n_queries=5_000,
                     rng=fanout)
    benchmark.extra_info.update(dist.row())
    assert dist.front_half >= 0.6
