"""Figure 8 bench — sorting cost vs search gain.

Times the three real preprocessing paths (none / partial / full radix
sort); modeled normalized totals ride along in extra_info.
"""

import numpy as np
import pytest

from repro.core.psa import fully_sorted_batch, identity_batch, prepare_batch
from repro.experiments.fig08_psa_overhead import _one_size
from benchmarks.conftest import N_KEYS, N_QUERIES


@pytest.fixture(scope="module")
def raw_queries(bench_queries):
    return np.ascontiguousarray(bench_queries)


def test_fig08_original_no_sort(benchmark, raw_queries):
    out = benchmark(identity_batch, raw_queries)
    benchmark.extra_info["sort_passes"] = out.sort_passes


def test_fig08_partial_sort(benchmark, raw_queries, bench_tree):
    bits_space = bench_tree.layout.key_space_bits()
    out = benchmark(
        prepare_batch, raw_queries, tree_size=N_KEYS, key_bits=bits_space
    )
    benchmark.extra_info["sort_passes"] = out.sort_passes


def test_fig08_full_sort(benchmark, raw_queries):
    out = benchmark(fully_sorted_batch, raw_queries)
    benchmark.extra_info["sort_passes"] = out.sort_passes


def test_fig08_modeled_totals(benchmark, device):
    data = benchmark.pedantic(
        _one_size, args=(N_KEYS, N_QUERIES, 0), kwargs={"device": device},
        rounds=1, iterations=1,
    )
    base = data["original"]["search_s"]
    for name in ("original", "sorted", "ps"):
        benchmark.extra_info[f"{name}_total_norm"] = round(
            data[name]["total_s"] / base, 3
        )
    assert data["ps"]["total_s"] <= data["original"]["total_s"]
