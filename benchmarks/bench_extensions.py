"""Benches for the extension experiments (range scans, pipeline modes,
persistence, epoch flushes)."""

import numpy as np
import pytest

from repro.core import EpochManager, HarmoniaTree, load_layout, save_layout
from repro.core.ntg import fanout_group_size
from repro.core.update import Operation
from repro.gpusim.kernels import SimConfig
from repro.gpusim.pipeline import compare_modes
from repro.gpusim.range_scan import simulate_range_scan
from repro.workloads.generators import range_query_bounds


@pytest.mark.parametrize("structure", ["harmonia", "regular_pointer"])
def test_ext_range_scan(benchmark, bench_tree, bench_keys, device, structure):
    los, his = range_query_bounds(bench_keys, 1_024, span_keys=256, rng=3)
    gs = fanout_group_size(bench_tree.fanout, device.warp_size)
    cfg = SimConfig(structure=structure, group_size=gs, early_exit=False,
                    cached_children=(structure == "harmonia"), device=device)
    metrics, scanned = benchmark.pedantic(
        simulate_range_scan, args=(bench_tree.layout, los, his, cfg),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["gld_transactions"] = metrics.gld_transactions
    benchmark.extra_info["keys_scanned"] = int(scanned.sum())


def test_ext_pipeline_modes(benchmark, device):
    points = benchmark(compare_modes, 64, 1 << 16, 50e-6, device)
    for mode, p in points.items():
        benchmark.extra_info[f"{mode}_ms"] = round(p.total_s * 1e3, 3)
    assert points["pipeline"].total_s <= points["serial"].total_s


def test_ext_persistence_roundtrip(benchmark, bench_tree, tmp_path):
    path = tmp_path / "tree.npz"

    def roundtrip():
        save_layout(bench_tree.layout, path)
        return load_layout(path, validate=False)

    loaded = benchmark(roundtrip)
    assert loaded.n_keys == len(bench_tree)


def test_ext_fast_build(benchmark, bench_keys):
    from repro.core.fastbuild import build_layout_fast

    layout = benchmark(build_layout_fast, bench_keys, None, 64, 0.7)
    benchmark.extra_info["nodes"] = layout.n_nodes


def test_ext_merge(benchmark, bench_keys):
    import numpy as np

    from repro.core.layout import HarmoniaLayout
    from repro.core.merge import merge_layouts

    half = bench_keys.size // 2
    a = HarmoniaLayout.from_sorted(bench_keys[:half], fanout=64, fill=0.7)
    b = HarmoniaLayout.from_sorted(bench_keys[half:], fanout=64, fill=0.7)
    merged = benchmark(merge_layouts, a, b)
    assert merged.n_keys == bench_keys.size


def test_ext_compact(benchmark, bench_keys):
    from repro.core.layout import HarmoniaLayout
    from repro.core.merge import compact

    sparse = HarmoniaLayout.from_sorted(bench_keys, fanout=64, fill=0.5)
    dense = benchmark(compact, sparse, 1.0)
    assert dense.n_leaves < sparse.n_leaves


def test_ext_record_store(benchmark):
    from repro.core.heap import RecordStore

    items = [(k, f"payload-{k}".encode()) for k in range(0, 20_000, 2)]

    def build_and_probe():
        store = RecordStore.from_items(items, fanout=64)
        return store.get_batch(list(range(0, 2_000)))

    got = benchmark.pedantic(build_and_probe, rounds=2, iterations=1)
    assert got[0] == b"payload-0" and got[1] is None


@pytest.mark.parametrize("order", ["random", "sorted"])
def test_ext_sort_kernel(benchmark, bench_queries, order):
    import numpy as np

    from repro.gpusim.sort_kernel import simulate_radix_sort

    keys = np.sort(bench_queries) if order == "sorted" else bench_queries
    m = benchmark.pedantic(
        simulate_radix_sort, args=(keys, 16), kwargs={"key_bits": 40},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["total_tx"] = m.total_transactions
    benchmark.extra_info["scatter_divergence"] = round(
        m.passes[0].scatter_divergence, 2
    )


def test_ext_epoch_flush(benchmark, bench_keys):
    ops = [Operation("update", int(k), 1) for k in bench_keys[:2_000]]

    def flush_once():
        tree = HarmoniaTree.from_sorted(bench_keys, fanout=64, fill=0.7)
        em = EpochManager(tree)
        em.submit_many(ops)
        return em.flush()

    res = benchmark.pedantic(flush_once, rounds=3, iterations=1)
    assert res.updated == 2_000
