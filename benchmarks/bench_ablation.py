"""DESIGN.md §5 ablations not covered by a single paper figure:

* node fill factor's effect on the Figure 10 front-half fraction;
* NTG fixed group-size sweep vs the model's choice;
* core substrate micro-benchmarks (traversal, layout build, movement).
"""

import numpy as np
import pytest

from repro.core import HarmoniaTree, SearchConfig
from repro.core.layout import HarmoniaLayout
from repro.core.search import search_batch, traverse_batch
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import modeled_throughput
from repro.workloads.generators import make_key_set, uniform_queries


@pytest.mark.parametrize("fill", [0.5, 0.7, 1.0])
def test_ablation_fill_factor_front_half(benchmark, fill):
    from repro.analysis.node_usage import node_quarter_distribution

    keys = make_key_set(8_000, rng=17)
    layout = HarmoniaLayout.from_sorted(keys, fanout=64, fill=fill)
    dist = benchmark(node_quarter_distribution, layout, n_queries=4_000, rng=18)
    benchmark.extra_info["fill"] = fill
    benchmark.extra_info["front_half"] = round(dist.front_half, 3)
    # Fuller nodes push searches deeper into the key region.
    if fill == 0.5:
        assert dist.front_half > 0.9


@pytest.mark.parametrize("gs", [1, 2, 4, 8, 16, 32])
def test_ablation_fixed_group_size(benchmark, bench_tree, prepared_full,
                                   device, gs):
    metrics = benchmark.pedantic(
        simulate_harmonia_search,
        args=(bench_tree.layout, prepared_full.queries, gs),
        kwargs={"device": device, "early_exit": gs < 32},
        rounds=1, iterations=1,
    )
    tp = modeled_throughput(metrics, bench_tree.layout, device)
    benchmark.extra_info["gs"] = gs
    benchmark.extra_info["modeled_gqs"] = round(tp / 1e9, 3)


def test_micro_traverse_batch(benchmark, bench_tree, bench_queries):
    trace = benchmark(traverse_batch, bench_tree.layout, bench_queries)
    assert trace.n_queries == bench_queries.size


def test_micro_search_batch(benchmark, bench_tree, bench_queries):
    out = benchmark(search_batch, bench_tree.layout, bench_queries)
    assert out.size == bench_queries.size


def test_micro_layout_build(benchmark, bench_keys):
    layout = benchmark(HarmoniaLayout.from_sorted, bench_keys, None, 64, 0.7)
    assert layout.n_keys == bench_keys.size


def test_micro_range_scan(benchmark, bench_tree, bench_keys):
    lo, hi = int(bench_keys[100]), int(bench_keys[4_000])

    def scan():
        return bench_tree.range_search(lo, hi)

    k, v = benchmark(scan)
    assert k.size == 3_901
