"""Figure-reproduction benchmarks (pytest-benchmark).

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_figNN`` module corresponds to one figure of the paper's
evaluation (see DESIGN.md's per-experiment index); regenerated figure rows
are attached to each benchmark's ``extra_info``.
"""
