"""Figure 13 bench — the design-choice ablation ladder.

Times the real vectorized pipeline under each configuration; modeled
speedups over HB+ ride along in extra_info.
"""

import pytest

from repro.core import SearchConfig
from repro.experiments.fig13_ablation import LADDER
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput


@pytest.mark.parametrize("name,cfg,early_exit", LADDER,
                         ids=[l[0] for l in LADDER])
def test_fig13_ladder(benchmark, bench_tree, bench_hbtree, bench_queries,
                      device, name, cfg, early_exit):
    out = benchmark(bench_tree.search_batch, bench_queries, cfg)
    assert out.size == bench_queries.size

    prep = bench_tree.prepare_queries(bench_queries, cfg)
    metrics = simulate_harmonia_search(
        bench_tree.layout, prep.queries, prep.group_size, device=device,
        early_exit=early_exit,
    )
    sort_s = estimate_sort_time(bench_queries.size, prep.psa.sort_passes, device)
    tp = modeled_throughput(metrics, bench_tree.layout, device, sort_s=sort_s)
    m_hb = bench_hbtree.simulate_search(bench_queries, device=device)
    tp_hb = modeled_throughput(m_hb, bench_hbtree._layout, device)
    benchmark.extra_info["modeled_speedup_vs_hb"] = round(tp / tp_hb, 2)
    benchmark.extra_info["group_size"] = prep.group_size
