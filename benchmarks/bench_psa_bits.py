"""§4.1.2 bench — the sorted-bits sweep behind Equation 2."""

import pytest

from repro.core.ntg import fanout_group_size
from repro.core.psa import optimal_sort_bits, prepare_batch, sort_cost_ratio
from repro.gpusim import simulate_harmonia_search
from benchmarks.conftest import N_KEYS


@pytest.mark.parametrize("bits_kind", ["none", "eq2", "all"])
def test_psa_bits_sweep(benchmark, bench_tree, bench_queries, device,
                        bits_kind):
    space = bench_tree.layout.key_space_bits()
    n_opt = optimal_sort_bits(N_KEYS, device.keys_per_cacheline)
    bits = {"none": 0, "eq2": n_opt, "all": space}[bits_kind]
    gs = fanout_group_size(bench_tree.fanout, device.warp_size)

    def run():
        psa = prepare_batch(bench_queries, bits=bits, key_bits=space)
        return simulate_harmonia_search(
            bench_tree.layout, psa.queries, gs, device=device,
            early_exit=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sorted_bits"] = bits
    benchmark.extra_info["dram_tx"] = metrics.total_dram_transactions
    benchmark.extra_info["sort_cost_fraction"] = round(sort_cost_ratio(bits), 3)
