"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that fully offline
environments lacking the ``wheel`` package can still do a legacy editable
install: ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
