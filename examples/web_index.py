"""Web-indexing workload: skewed (zipf) lookups across competing indexes.

The paper's intro motivates Harmonia with web indexing ("millions of
searches per second on Google").  Real search traffic is heavily skewed:
hot documents dominate.  This example compares four index structures on
the same zipf-skewed batch:

* Harmonia (full pipeline),
* HB+Tree's GPU part,
* the implicit (BFS-array) B+tree the paper contrasts with in §2.2,
* a multi-threaded CPU pointer B+tree.

Run:  python examples/web_index.py
"""

import time

import numpy as np

from repro import (
    CPUBTreeSearcher,
    HarmoniaTree,
    HBTree,
    ImplicitBPlusTree,
    SearchConfig,
)
from repro.workloads.generators import make_key_set, zipf_queries

N_DOCS = 1 << 16
N_QUERIES = 1 << 15

rng = np.random.default_rng(2024)
doc_ids = make_key_set(N_DOCS, rng=rng)
postings_offset = (doc_ids * 3 + 17).astype(np.int64)  # fake payload

print(f"web index: {N_DOCS} documents, {N_QUERIES} zipf(1.2) lookups\n")
queries = zipf_queries(doc_ids, N_QUERIES, alpha=1.2, rng=rng)
uniq = np.unique(queries).size
print(f"query skew: {uniq} distinct targets "
      f"({uniq / N_QUERIES:.1%} of the batch)\n")

indexes = {
    "harmonia": HarmoniaTree.from_sorted(doc_ids, postings_offset,
                                         fanout=64, fill=0.7),
    "hbtree": HBTree.from_sorted(doc_ids, postings_offset,
                                 fanout=64, fill=0.7),
    "implicit": ImplicitBPlusTree(doc_ids, postings_offset, fanout=64),
    "cpu (4 threads)": CPUBTreeSearcher.from_sorted(
        doc_ids, postings_offset, fanout=64, fill=0.7, n_threads=4
    ),
}

reference = None
print(f"{'index':<16} {'wall Mq/s':>10}   agreement")
for name, index in indexes.items():
    if isinstance(index, HarmoniaTree):
        run = lambda: index.search_batch(queries, SearchConfig.full())
    else:
        run = lambda: index.search_batch(queries)
    run()  # warm up (NTG profiling, caches)
    t0 = time.perf_counter()
    out = run()
    dt = time.perf_counter() - t0
    if reference is None:
        reference = out
        agree = "reference"
    else:
        agree = "OK" if np.array_equal(out, reference) else "MISMATCH!"
    print(f"{name:<16} {N_QUERIES / dt / 1e6:>10.2f}   {agree}")

assert reference is not None
print("\nall structures agree on every result.")
