"""A miniature key-value service: epochs, concurrent readers, persistence.

Puts the operational pieces together the way a deployment would:

* an :class:`~repro.core.epoch.EpochManager` gives readers snapshot
  isolation while writers batch through Algorithm 1 + movement;
* reader threads hammer the index during flushes and verify they never
  observe a half-applied batch;
* the final snapshot is persisted to disk and reloaded with full
  invariant validation.

Run:  python examples/kv_service.py
"""

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import (
    EpochManager,
    HarmoniaTree,
    Operation,
    layout_stats,
    load_tree,
    save_tree,
)
from repro.workloads.generators import make_key_set

N_KEYS = 1 << 15
N_EPOCHS = 5
OPS_PER_EPOCH = 2_000

rng = np.random.default_rng(4242)
keys = make_key_set(N_KEYS, rng=rng)
tree = HarmoniaTree.from_sorted(keys, values=keys + 1, fanout=64, fill=0.7)
service = EpochManager(tree, batch_capacity=OPS_PER_EPOCH)

print(f"service up: {N_KEYS} keys, epoch {service.epoch}")
st = layout_stats(tree.layout)
print(f"  height {st.height}, leaf occupancy {st.mean_leaf_occupancy:.0%}, "
      f"child region {st.child_region_bytes / 1e3:.1f} KB "
      f"({st.const_resident_levels()} of {st.height} levels constant-resident)\n")

# ---- concurrent readers ------------------------------------------------
stop = threading.Event()
read_counts = [0, 0, 0]
anomalies = []


def reader(idx: int) -> None:
    probe = keys[:: 7]
    while not stop.is_set():
        out = service.search_batch(probe)
        # Values are k+1 initially and overwritten to -epoch later; a read
        # must never see anything else for a live key.
        live = out != np.iinfo(np.int64).min
        ok = (out[live] == probe[live] + 1) | (out[live] < 0)
        if not ok.all():
            anomalies.append(idx)
        read_counts[idx] += 1


threads = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
for t in threads:
    t.start()

# ---- writer epochs -----------------------------------------------------
for epoch in range(1, N_EPOCHS + 1):
    targets = rng.choice(keys, OPS_PER_EPOCH - 100, replace=False)
    ops = [Operation("update", int(k), -epoch) for k in targets]
    ops += [
        Operation("insert", int(k), -epoch)
        for k in rng.integers(0, 1 << 40, size=100)
    ]
    t0 = time.perf_counter()
    auto = service.submit_many(ops)  # may auto-flush at capacity
    manual = service.flush()
    dt = time.perf_counter() - t0
    for result in auto + ([manual] if manual else []):
        print(f"epoch {service.epoch}: {result.n_effective} effective ops "
              f"in {dt * 1e3:.0f} ms ({result.split_leaves} splits, "
              f"{result.rebuilt_dirty} leaves rebuilt)")

stop.set()
for t in threads:
    t.join()
print(f"\nreaders completed {sum(read_counts)} snapshot batches; "
      f"anomalies: {len(anomalies)} (must be 0)")
assert not anomalies

# ---- persistence -------------------------------------------------------
with tempfile.TemporaryDirectory() as d:
    path = Path(d) / "index.npz"
    snapshot = HarmoniaTree(service._tree.layout, fill=0.7)
    save_tree(snapshot, path)
    restored = load_tree(path, fill=0.7)  # validates invariants on load
    probe = keys[:1_000]
    assert np.array_equal(
        restored.search_batch(probe), service.search_batch(probe)
    )
    print(f"snapshot persisted ({path.stat().st_size / 1e6:.1f} MB) and "
          "restored identically — done.")
