"""Paper-scale spot check: Figures 12 and 13 at the literal §5.1 setup.

Most experiments run at reduced scale with a miniaturized device
(EXPERIMENTS.md, "Scaling methodology").  This script is the control: a
true 2^23-key, fanout-64 tree simulated against the stock TITAN V — no
miniaturization — with a query batch big enough for stable counters.
Expect a couple of minutes; reduce --queries for a faster pass.

Run:  python examples/paper_scale_fig12.py [--keys 23] [--queries 17]
"""

import argparse
import time

import numpy as np

from repro import HarmoniaTree, SearchConfig, TITAN_V
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.kernels import simulate_hbtree_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.generators import make_key_set, uniform_queries

parser = argparse.ArgumentParser()
parser.add_argument("--keys", type=int, default=23, help="log2 tree size")
parser.add_argument(
    "--queries", type=int, default=21,
    help="log2 batch size (keep >= 20: the paper's 100M-query batches give "
    "PSA hundreds of queries per leaf; tiny batches starve it)",
)
args = parser.parse_args()

N, Q = 1 << args.keys, 1 << args.queries
device = TITAN_V  # the real thing — no miniaturization

print(f"building 2^{args.keys} = {N} key tree (fanout 64, fill 0.7)...")
t0 = time.perf_counter()
rng = np.random.default_rng(0)
keys = make_key_set(N, key_space_bits=40, rng=rng)
tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
print(f"  built in {time.perf_counter() - t0:.1f}s: height {tree.height}, "
      f"{tree.layout.n_nodes} nodes, key region "
      f"{tree.layout.key_region_bytes() / 2**20:.0f} MiB, child region "
      f"{tree.layout.child_region_bytes() / 2**10:.0f} KiB")

queries = uniform_queries(keys, Q, rng=rng)

print(f"\nsimulating HB+tree kernel on {Q} queries...")
t0 = time.perf_counter()
m_hb = simulate_hbtree_search(tree.layout, queries, device=device)
print(f"  {time.perf_counter() - t0:.1f}s")
tp_hb = modeled_throughput(m_hb, tree.layout, device)

print("simulating Harmonia (full pipeline)...")
prep = tree.prepare_queries(queries, SearchConfig.full())
t0 = time.perf_counter()
m_ha = simulate_harmonia_search(
    tree.layout, prep.queries, prep.group_size, device=device
)
print(f"  {time.perf_counter() - t0:.1f}s (PSA {prep.psa.bits_sorted} bits, "
      f"NTG gs={prep.group_size})")
sort_s = estimate_sort_time(Q, prep.psa.sort_passes, device)
tp_ha = modeled_throughput(m_ha, tree.layout, device, sort_s=sort_s)

print("\n=== Figure 12 at paper scale (normalized to HB+) ===")
print(f"{'metric':28s} {'paper':>8s} {'measured':>9s}")
rows = [
    ("global mem transactions", 0.22,
     m_ha.gld_transactions / m_hb.gld_transactions),
    ("memory divergence", 0.66,
     m_ha.transactions_per_request / m_hb.transactions_per_request),
    ("warp coherence", 1.13, m_ha.warp_coherence / m_hb.warp_coherence),
]
for name, paper, measured in rows:
    print(f"{name:28s} {paper:8.2f} {measured:9.3f}")

print("\n=== Figure 11/13 headline at paper scale ===")
print(f"HB+ modeled:      {tp_hb / 1e9:6.2f} Gq/s   (paper ≈ 1.05)")
print(f"Harmonia modeled: {tp_ha / 1e9:6.2f} Gq/s   (paper ≈ 3.6)")
print(f"speedup:          {tp_ha / tp_hb:6.2f}x      (paper ≈ 3.4x)")
