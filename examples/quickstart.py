"""Quickstart: build a Harmonia B+tree, query it, update it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HarmoniaTree, Operation, SearchConfig, NOT_FOUND

# ---------------------------------------------------------------- build
# Harmonia trees are bulk-built from sorted keys (the paper's evaluation
# path).  Values default to the keys; pass `values=` for real payloads.
keys = np.arange(0, 1_000_000, 2, dtype=np.int64)  # even numbers
tree = HarmoniaTree.from_sorted(keys, values=keys * 10, fanout=64, fill=0.7)
print(f"built: {tree}")
print(f"  key region:   {tree.layout.key_region_bytes() / 1e6:.1f} MB")
print(f"  child region: {tree.layout.child_region_bytes() / 1e3:.1f} KB "
      "(the part Harmonia keeps in GPU constant memory)")

# ---------------------------------------------------------------- search
# Single lookups...
assert tree.search(42) == 420
assert tree.search(43) is None

# ...and the batched pipeline the paper is about: PSA partially sorts the
# batch (Equation 2 picks the bits), NTG picks the thread-group width by
# static profiling, results come back in input order.
rng = np.random.default_rng(0)
queries = rng.choice(keys, size=100_000)
values = tree.search_batch(queries, SearchConfig.full())
assert np.array_equal(values, queries * 10)
print(f"batched {queries.size} queries; all found")

misses = queries + 1  # odd numbers are absent
assert np.all(tree.search_batch(misses) == NOT_FOUND)

# ----------------------------------------------------------------- range
lo, hi = 1_000, 1_040
rkeys, rvalues = tree.range_search(lo, hi)
print(f"range [{lo}, {hi}]: keys={rkeys.tolist()}")

# ---------------------------------------------------------------- update
# Updates are phase-based (§3.2.2): batch them, apply under Algorithm 1's
# two-grained locking, then one movement pass folds splits back into the
# consecutive key region.
batch = [Operation("insert", k, k) for k in range(1, 2_001, 2)]
batch += [Operation("update", 0, -1), Operation("delete", 2)]
result = tree.apply_batch(batch)
print(
    f"batch applied: +{result.inserted} inserted, {result.updated} updated, "
    f"-{result.deleted} deleted, {result.split_leaves} leaves split "
    f"(movement rebuilt {result.rebuilt_dirty} leaves, "
    f"reused {result.moved_clean})"
)
assert tree.search(1) == 1
assert tree.search(0) == -1
assert tree.search(2) is None
tree.check_invariants()
print("invariants hold — done.")
