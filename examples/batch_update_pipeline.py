"""Phase-based query/update pipeline (§3.2.2 end to end).

B+tree systems in lookup-intensive deployments batch their writes: long
query phases on an immutable snapshot, punctuated by update batches
(TPC-H-style read/write ratio ≈ 35:1).  This example drives several full
cycles and reports what the paper's Figure 14 measures — batch update
throughput, split into the locked apply phase and the movement
(region-rebuild) phase — plus Algorithm 1's staging statistics.

Run:  python examples/batch_update_pipeline.py
"""

import time

import numpy as np

from repro import HarmoniaTree, SearchConfig, UpdateConfig
from repro.workloads.generators import make_key_set, uniform_queries
from repro.workloads.mixes import PAPER_UPDATE_MIX, UpdateMix, make_update_batch

N_KEYS = 1 << 16
QUERIES_PER_PHASE = 1 << 15
OPS_PER_BATCH = 1 << 12
ROUNDS = 4

rng = np.random.default_rng(99)
keys = make_key_set(N_KEYS, rng=rng)
tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
cfg = UpdateConfig(n_threads=4)

print(f"pipeline: {ROUNDS} rounds of "
      f"{QUERIES_PER_PHASE} queries + {OPS_PER_BATCH}-op update batch "
      f"(mix: {PAPER_UPDATE_MIX.insert:.0%} insert / "
      f"{PAPER_UPDATE_MIX.update:.0%} update)\n")

mix_with_deletes = UpdateMix(insert=0.05, update=0.90, delete=0.05)

for round_no in range(1, ROUNDS + 1):
    # ---- query phase (immutable snapshot) ---------------------------
    stored = tree.layout.all_keys()
    queries = uniform_queries(stored, QUERIES_PER_PHASE, rng=rng)
    t0 = time.perf_counter()
    tree.search_batch(queries, SearchConfig.full())
    q_dt = time.perf_counter() - t0

    # ---- update phase (Algorithm 1 + auxiliary nodes + movement) ----
    mix = PAPER_UPDATE_MIX if round_no % 2 else mix_with_deletes
    ops = make_update_batch(stored, OPS_PER_BATCH, mix=mix,
                            rng=rng.integers(1 << 30))
    t0 = time.perf_counter()
    res = tree.apply_batch(ops, cfg)
    u_dt = time.perf_counter() - t0
    tree.check_invariants()

    print(
        f"round {round_no}: "
        f"queries {QUERIES_PER_PHASE / q_dt / 1e6:6.2f} Mq/s | "
        f"updates {len(ops) / u_dt / 1e3:7.1f} Kops/s "
        f"(apply {res.timer.get('apply') * 1e3:6.1f} ms, "
        f"movement {res.timer.get('movement') * 1e3:6.1f} ms) | "
        f"{res.split_leaves} leaves split, "
        f"{res.rebuilt_dirty} rebuilt, {res.moved_clean} reused | "
        f"size {len(tree)}"
    )

print("\npipeline done; final tree is consistent.")
