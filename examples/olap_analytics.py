"""OLAP decision-support index (the paper's motivating scenario, §2.2).

A lookup-intensive analytics store: a large fact-table index queried in
huge batches, with rare batched maintenance.  This example runs the whole
Harmonia pipeline and — because the repository ships a SIMT device model —
also reports the GPU-side counters and modeled throughput the paper
evaluates, next to the actual CPU wall clock.

Run:  python examples/olap_analytics.py [n_keys] [n_queries]
"""

import sys
import time

import numpy as np

from repro import HarmoniaTree, HBTree, SearchConfig, TITAN_V
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import get_scale, scaled_device
from repro.workloads.generators import make_key_set, uniform_queries

n_keys = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 17
n_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 1 << 16

print(f"OLAP index: {n_keys} rows, {n_queries} point lookups per batch")
rng = np.random.default_rng(7)
keys = make_key_set(n_keys, rng=rng)
order_ids = keys  # e.g. order numbers
revenue = (keys % 997 * 100).astype(np.int64)  # per-order revenue cents

tree = HarmoniaTree.from_sorted(order_ids, revenue, fanout=64, fill=0.7)
hb = HBTree.from_sorted(order_ids, revenue, fanout=64, fill=0.7)
device = scaled_device(get_scale("default"), TITAN_V)

queries = uniform_queries(order_ids, n_queries, hit_ratio=0.95, rng=rng)

# --- Harmonia pipeline -----------------------------------------------
prep = tree.prepare_queries(queries, SearchConfig.full())
print(f"PSA sorted top {prep.psa.bits_sorted} bits "
      f"({prep.psa.sort_passes} radix passes); NTG chose {prep.group_size} "
      "threads per query")

t0 = time.perf_counter()
values = tree.search_batch(queries, SearchConfig.full())
wall = time.perf_counter() - t0
hits = values != np.iinfo(np.int64).min
print(f"CPU execution: {n_queries / wall / 1e6:.2f} Mq/s wall-clock, "
      f"{hits.mean():.1%} hit rate")

metrics = simulate_harmonia_search(
    tree.layout, prep.queries, prep.group_size, device=device
)
sort_s = estimate_sort_time(n_queries, prep.psa.sort_passes, device)
tp = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
print(f"modeled GPU ({device.name}): {tp / 1e9:.2f} Gq/s   "
      f"[{metrics.gld_transactions} global transactions, "
      f"coherence {metrics.warp_coherence:.2f}, "
      f"utilization {metrics.utilization:.2f}]")

# --- HB+tree comparator ----------------------------------------------
m_hb = hb.simulate_search(queries, device=device)
tp_hb = modeled_throughput(m_hb, hb._layout, device)
print(f"HB+tree modeled: {tp_hb / 1e9:.2f} Gq/s  →  Harmonia speedup "
      f"{tp / tp_hb:.1f}x")

# --- a revenue aggregation over an order range ------------------------
lo, hi = int(order_ids[n_keys // 4]), int(order_ids[n_keys // 4 + 5_000])
rk, rv = tree.range_search(lo, hi)
print(f"range aggregate over {rk.size} orders: total revenue "
      f"{int(rv.sum()) / 100:.2f}")
